package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/parallel"
	"repro/internal/partitioners"
	"repro/internal/stats"

	topomap "repro"
)

// Table1 regenerates Table I: for the cagelike SpMV kernel and the
// communication-only applications (cagelike and rgg), at two
// processor counts and two allocations each, the geometric mean of
// execution times across all seven partitioner graphs — DEF in
// seconds, the other mappers normalized to DEF.
// Table1 with a fresh cache; see Suite for shared-cache runs.
func Table1(cfg Config) (string, error) { return NewSuite(cfg).Table1() }

func (s *Suite) Table1() (string, error) {
	c := s.c
	cfg := s.cfg
	topo := cfg.torus()
	out := &stats.Table{
		Title:   "Table I: average improvements (time normalized to DEF; DEF in seconds)",
		Headers: []string{"workload", "procs", "alloc", "DEF(s)", "TMAP", "UG", "UWH", "UMC", "UMMC"},
	}
	mappers := []topomap.Mapper{topomap.TMAP, topomap.UG, topomap.UWH, topomap.UMC, topomap.UMMC}

	// Two largest part counts of the sweep (the paper uses 4096 and
	// 8192), two allocations.
	ks := cfg.PartCounts
	if len(ks) > 2 {
		ks = ks[len(ks)-2:]
	}
	type workload struct {
		label  string
		matrix string
		kind   string  // "spmv" or "comm"
		scale  float64 // bytesPerUnit for comm
		iters  []int   // per allocation index for spmv (500/1000)
		ks     []int
	}
	workloads := []workload{
		{"cagelike SpMV", gen.Cagelike, "spmv", 0, []int{500, 1000}, ks},
		{"cagelike Comm", gen.Cagelike, "comm", 4096, nil, ks},
		{"rgg Comm", gen.RGGName, "comm", 262144, nil, ks[:1]},
	}

	// Per workload: normalized times for the grand geomean rows.
	grand := map[string]map[topomap.Mapper][]float64{}
	grandDEF := map[string][]float64{}

	for _, wl := range workloads {
		grand[wl.label] = map[topomap.Mapper][]float64{}
		for _, k := range wl.ks {
			nNodes := k / cfg.ProcsPerNode
			if nNodes < 2 || nNodes > topo.Nodes() {
				continue
			}
			for ai := 0; ai < 2; ai++ {
				a, err := c.allocOf(topo, nNodes, cfg.Seed+int64(ai)*101)
				if err != nil {
					return "", err
				}
				iters := 0
				if wl.kind == "spmv" {
					iters = wl.iters[ai%len(wl.iters)]
				}
				// One parallel unit per partitioner; aggregation
				// below runs in partitioner order, so the table is
				// identical to a serial run's.
				type partResult struct {
					skip    bool
					defTime float64
					normed  map[topomap.Mapper]float64
				}
				parts := partitioners.All()
				results, err := parallel.Map(len(parts), 0, func(pi int) (partResult, error) {
					tg, err := c.taskGraphOf(wl.matrix, parts[pi], k)
					if err == errSkip {
						return partResult{skip: true}, nil
					}
					if err != nil {
						return partResult{}, err
					}
					defRes, _, err := c.mapCase(topomap.DEF, tg, topo, a, cfg.Seed)
					if err != nil {
						return partResult{}, err
					}
					defTime, _ := c.simulate(wl.kind, tg, topo, defRes.Placement(), wl.scale, iters)
					pr := partResult{defTime: defTime, normed: map[topomap.Mapper]float64{}}
					for _, mp := range mappers {
						res, _, err := c.mapCase(mp, tg, topo, a, cfg.Seed)
						if err != nil {
							return partResult{}, err
						}
						mt, _ := c.simulate(wl.kind, tg, topo, res.Placement(), wl.scale, iters)
						if defTime > 0 {
							pr.normed[mp] = mt / defTime
						}
					}
					return pr, nil
				})
				if err != nil {
					return "", err
				}
				var defTimes []float64
				normed := map[topomap.Mapper][]float64{}
				for _, pr := range results {
					if pr.skip {
						continue
					}
					defTimes = append(defTimes, pr.defTime)
					for _, mp := range mappers {
						if v, ok := pr.normed[mp]; ok {
							normed[mp] = append(normed[mp], v)
						}
					}
				}
				row := []string{wl.label, fmt.Sprint(k), fmt.Sprint(ai + 1),
					fmt.Sprintf("%.3g", stats.GeoMean(defTimes))}
				for _, mp := range mappers {
					row = append(row, stats.F2(stats.GeoMean(normed[mp])))
					grand[wl.label][mp] = append(grand[wl.label][mp], normed[mp]...)
				}
				out.AddRow(row...)
				grandDEF[wl.label] = append(grandDEF[wl.label], defTimes...)
				c.progressf("  table1: %s k=%d alloc=%d done\n", wl.label, k, ai)
			}
		}
		// Geometric-mean summary row per workload.
		row := []string{wl.label + " Gmean", "", "",
			fmt.Sprintf("%.3g", stats.GeoMean(grandDEF[wl.label]))}
		for _, mp := range mappers {
			row = append(row, stats.F2(stats.GeoMean(grand[wl.label][mp])))
		}
		out.AddRow(row...)
	}
	return render(out), nil
}

package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/partitioners"
	"repro/internal/stats"

	topomap "repro"
)

// Figure1 regenerates Figure 1: geometric means of the partition
// metrics TV, TM, MSV, MSM per partitioner and part count, normalized
// to PATOH's value on the same matrix and part count.
// Figure1 with a fresh cache; see Suite for shared-cache runs.
func Figure1(cfg Config) (string, error) { return NewSuite(cfg).Figure1() }

func (s *Suite) Figure1() (string, error) {
	c := s.c
	cfg := s.cfg
	out := &stats.Table{
		Title:   "Figure 1: partition metrics, geomean normalized to PATOH",
		Headers: []string{"k", "partitioner", "TV", "TM", "MSV", "MSM"},
	}
	// Partition every (matrix, partitioner, k) case in parallel up
	// front; the reporting loops below then only read the cache.
	var cases []tgCase
	for _, k := range cfg.PartCounts {
		for _, p := range partitioners.All() {
			for _, name := range cfg.matrices() {
				cases = append(cases, tgCase{name, p, k})
			}
		}
	}
	if err := s.warmTaskGraphs(cases); err != nil {
		return "", err
	}
	for _, k := range cfg.PartCounts {
		// Collect PATOH baselines first.
		type met = map[string]float64
		base := map[string]met{}
		for _, name := range cfg.matrices() {
			tg, err := c.taskGraphOf(name, partitioners.PATOHP, k)
			if err == errSkip {
				continue
			}
			if err != nil {
				return "", err
			}
			pm := tg.PartitionMetrics()
			base[name] = met{"TV": float64(pm.TV), "TM": float64(pm.TM),
				"MSV": float64(pm.MSV), "MSM": float64(pm.MSM)}
		}
		for _, p := range partitioners.All() {
			ratios := map[string][]float64{}
			for _, name := range cfg.matrices() {
				b, ok := base[name]
				if !ok {
					continue
				}
				tg, err := c.taskGraphOf(name, p, k)
				if err == errSkip {
					continue
				}
				if err != nil {
					return "", err
				}
				pm := tg.PartitionMetrics()
				for metName, val := range map[string]float64{
					"TV": float64(pm.TV), "TM": float64(pm.TM),
					"MSV": float64(pm.MSV), "MSM": float64(pm.MSM)} {
					if b[metName] > 0 && val > 0 {
						ratios[metName] = append(ratios[metName], val/b[metName])
					}
				}
			}
			out.AddRow(fmt.Sprint(k), string(p),
				stats.F(stats.GeoMean(ratios["TV"])),
				stats.F(stats.GeoMean(ratios["TM"])),
				stats.F(stats.GeoMean(ratios["MSV"])),
				stats.F(stats.GeoMean(ratios["MSM"])))
		}
	}
	return render(out), nil
}

// Figure2 regenerates Figure 2: mean mapping metric values (TH, WH,
// MMC, MC) of the seven mappers on the PATOH task graphs, normalized
// to DEF, per processor count.
// Figure2 with a fresh cache; see Suite for shared-cache runs.
func Figure2(cfg Config) (string, error) { return NewSuite(cfg).Figure2() }

func (s *Suite) Figure2() (string, error) {
	c := s.c
	cfg := s.cfg
	topo := cfg.torus()
	out := &stats.Table{
		Title:   "Figure 2: mapping metrics on PATOH graphs, geomean normalized to DEF",
		Headers: []string{"procs", "mapper", "TH", "WH", "MMC", "MC"},
	}
	metricNames := []string{"TH", "WH", "MMC", "MC"}
	var warm []tgCase
	for _, k := range cfg.PartCounts {
		for _, name := range cfg.matrices() {
			warm = append(warm, tgCase{name, partitioners.PATOHP, k})
		}
	}
	if err := s.warmTaskGraphs(warm); err != nil {
		return "", err
	}
	for _, k := range cfg.PartCounts {
		nNodes := k / cfg.ProcsPerNode
		if nNodes < 2 || nNodes > topo.Nodes() {
			continue
		}
		// One independent unit of work per (matrix, allocation) pair;
		// the units run in parallel and their per-mapper metric
		// ratios are aggregated afterwards in deterministic order.
		type unit struct {
			name string
			tg   *topomap.TaskGraph
			ai   int
		}
		var units []unit
		for _, name := range cfg.matrices() {
			tg, err := c.taskGraphOf(name, partitioners.PATOHP, k)
			if err == errSkip {
				continue
			}
			if err != nil {
				return "", err
			}
			for ai := 0; ai < cfg.Allocations; ai++ {
				units = append(units, unit{name, tg, ai})
			}
		}
		results, err := parallel.Map(len(units), 0,
			func(i int) (map[topomap.Mapper]metrics.MapMetrics, error) {
				u := units[i]
				a, err := c.allocOf(topo, nNodes, cfg.Seed+int64(u.ai)*101)
				if err != nil {
					return nil, err
				}
				got := map[topomap.Mapper]metrics.MapMetrics{}
				for _, mp := range topomap.Mappers() {
					res, _, err := c.mapCase(mp, u.tg, topo, a, cfg.Seed)
					if err != nil {
						return nil, err
					}
					got[mp] = res.Metrics
				}
				c.progressf("  fig2: %s k=%d alloc=%d done\n", u.name, k, u.ai)
				return got, nil
			})
		if err != nil {
			return "", err
		}
		ratios := map[topomap.Mapper]map[string][]float64{}
		for _, mp := range topomap.Mappers() {
			ratios[mp] = map[string][]float64{}
		}
		for _, got := range results {
			def := got[topomap.DEF]
			for _, mp := range topomap.Mappers() {
				for _, mn := range metricNames {
					b := metricValue(def, mn)
					v := metricValue(got[mp], mn)
					if b > 0 {
						ratios[mp][mn] = append(ratios[mp][mn], v/b)
					}
				}
			}
		}
		for _, mp := range topomap.Mappers() {
			out.AddRow(fmt.Sprint(k), string(mp),
				stats.F(stats.GeoMean(ratios[mp]["TH"])),
				stats.F(stats.GeoMean(ratios[mp]["WH"])),
				stats.F(stats.GeoMean(ratios[mp]["MMC"])),
				stats.F(stats.GeoMean(ratios[mp]["MC"])))
		}
	}
	return render(out), nil
}

// Figure3 regenerates Figure 3: geometric mean mapping times (in
// seconds) of the mapping algorithms on PATOH task graphs. As in the
// paper, the times of UWH, UMC and UMMC include the UG construction
// they refine.
// Figure3 with a fresh cache; see Suite for shared-cache runs.
func Figure3(cfg Config) (string, error) { return NewSuite(cfg).Figure3() }

func (s *Suite) Figure3() (string, error) {
	c := s.c
	cfg := s.cfg
	topo := cfg.torus()
	out := &stats.Table{
		Title:   "Figure 3: geometric mean mapping times (seconds)",
		Headers: []string{"procs", "TMAP", "SMAP", "UG", "UWH", "UMC", "UMMC"},
	}
	mappers := []topomap.Mapper{topomap.TMAP, topomap.SMAP, topomap.UG,
		topomap.UWH, topomap.UMC, topomap.UMMC}
	// Partition in parallel, but run and time the mappers serially:
	// Figure 3 reports wall-clock mapping times, which concurrent
	// execution would contaminate.
	var warm []tgCase
	for _, k := range cfg.PartCounts {
		for _, name := range cfg.matrices() {
			warm = append(warm, tgCase{name, partitioners.PATOHP, k})
		}
	}
	if err := s.warmTaskGraphs(warm); err != nil {
		return "", err
	}
	for _, k := range cfg.PartCounts {
		nNodes := k / cfg.ProcsPerNode
		if nNodes < 2 || nNodes > topo.Nodes() {
			continue
		}
		times := map[topomap.Mapper][]float64{}
		for _, name := range cfg.matrices() {
			tg, err := c.taskGraphOf(name, partitioners.PATOHP, k)
			if err == errSkip {
				continue
			}
			if err != nil {
				return "", err
			}
			a, err := c.allocOf(topo, nNodes, cfg.Seed)
			if err != nil {
				return "", err
			}
			for _, mp := range mappers {
				_, dt, err := c.mapCase(mp, tg, topo, a, cfg.Seed)
				if err != nil {
					return "", err
				}
				times[mp] = append(times[mp], dt.Seconds())
			}
		}
		row := []string{fmt.Sprint(k)}
		for _, mp := range mappers {
			row = append(row, fmt.Sprintf("%.4f", stats.GeoMean(times[mp])))
		}
		out.AddRow(row...)
	}
	return render(out), nil
}

// Figure4 regenerates Figure 4a (cagelike, the cage15 stand-in) or 4b
// (rgg): communication-only execution times and the WH/MMC/MC metrics
// for every partitioner × mapper, normalized to DEF on the PATOH
// graph.
func Figure4(cfg Config, variant string) (string, error) {
	return NewSuite(cfg).Figure4(variant)
}

// Figure4 is the shared-cache variant.
func (s *Suite) Figure4(variant string) (string, error) {
	switch variant {
	case "a":
		return s.commFigure(gen.Cagelike, 4096)
	case "b":
		return s.commFigure(gen.RGGName, 262144)
	}
	return "", fmt.Errorf("exp: Figure4 variant must be \"a\" or \"b\"")
}

func (s *Suite) commFigure(matName string, bytesPerUnit float64) (string, error) {
	c := s.c
	cfg := s.cfg
	topo := cfg.torus()
	k := cfg.PartCounts[len(cfg.PartCounts)-1]
	nNodes := k / cfg.ProcsPerNode
	out := &stats.Table{
		Title: fmt.Sprintf("Figure 4 (%s, %d procs, scale %g): comm-only, normalized to DEF on PATOH",
			matName, k, bytesPerUnit),
		Headers: []string{"partitioner", "mapper", "WH", "MMC", "MC", "CommTime", "±std"},
	}
	a, err := c.allocOf(topo, nNodes, cfg.Seed)
	if err != nil {
		return "", err
	}
	// Baseline: DEF mapping of the PATOH graph.
	baseTG, err := c.taskGraphOf(matName, partitioners.PATOHP, k)
	if err != nil {
		return "", err
	}
	baseRes, _, err := c.mapCase(topomap.DEF, baseTG, topo, a, cfg.Seed)
	if err != nil {
		return "", err
	}
	baseTime, _ := c.simulate("comm", baseTG, topo, baseRes.Placement(), bytesPerUnit, 0)
	baseM := baseRes.Metrics

	// Each partitioner's rows are independent: compute them in
	// parallel and emit in figure order.
	parts := partitioners.All()
	rows, err := parallel.Map(len(parts), 0, func(pi int) ([][]string, error) {
		p := parts[pi]
		tg, err := c.taskGraphOf(matName, p, k)
		if err == errSkip {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		var group [][]string
		for _, mp := range commMappers() {
			res, _, err := c.mapCase(mp, tg, topo, a, cfg.Seed)
			if err != nil {
				return nil, err
			}
			mean, std := c.simulate("comm", tg, topo, res.Placement(), bytesPerUnit, 0)
			group = append(group, []string{string(p), string(mp),
				stats.F(float64(res.Metrics.WH) / float64(baseM.WH)),
				stats.F(float64(res.Metrics.MMC) / float64(baseM.MMC)),
				stats.F(res.Metrics.MC / baseM.MC),
				stats.F(mean / baseTime),
				stats.F(std / baseTime)})
		}
		c.progressf("  fig4 %s: partitioner %s done\n", matName, p)
		return group, nil
	})
	if err != nil {
		return "", err
	}
	for _, group := range rows {
		for _, row := range group {
			out.AddRow(row...)
		}
	}
	return render(out), nil
}

// Figure5 regenerates Figure 5: SpMV (Tpetra-like) execution for the
// cagelike matrix: TH, MMC, MC and time per partitioner × mapper,
// normalized to DEF on the PATOH graph.
// Figure5 with a fresh cache; see Suite for shared-cache runs.
func Figure5(cfg Config) (string, error) { return NewSuite(cfg).Figure5() }

func (s *Suite) Figure5() (string, error) {
	c := s.c
	cfg := s.cfg
	topo := cfg.torus()
	k := cfg.PartCounts[len(cfg.PartCounts)-1]
	nNodes := k / cfg.ProcsPerNode
	const iters = 500
	out := &stats.Table{
		Title: fmt.Sprintf("Figure 5 (SpMV %s, %d procs, %d iters): normalized to DEF on PATOH",
			gen.Cagelike, k, iters),
		Headers: []string{"partitioner", "mapper", "TH", "MMC", "MC", "TpetraTime", "±std"},
	}
	a, err := c.allocOf(topo, nNodes, cfg.Seed)
	if err != nil {
		return "", err
	}
	baseTG, err := c.taskGraphOf(gen.Cagelike, partitioners.PATOHP, k)
	if err != nil {
		return "", err
	}
	baseRes, _, err := c.mapCase(topomap.DEF, baseTG, topo, a, cfg.Seed)
	if err != nil {
		return "", err
	}
	baseTime, _ := c.simulate("spmv", baseTG, topo, baseRes.Placement(), 0, iters)
	baseM := baseRes.Metrics

	parts := partitioners.All()
	rows, err := parallel.Map(len(parts), 0, func(pi int) ([][]string, error) {
		p := parts[pi]
		tg, err := c.taskGraphOf(gen.Cagelike, p, k)
		if err == errSkip {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		var group [][]string
		for _, mp := range commMappers() {
			res, _, err := c.mapCase(mp, tg, topo, a, cfg.Seed)
			if err != nil {
				return nil, err
			}
			mean, std := c.simulate("spmv", tg, topo, res.Placement(), 0, iters)
			group = append(group, []string{string(p), string(mp),
				stats.F(float64(res.Metrics.TH) / float64(baseM.TH)),
				stats.F(float64(res.Metrics.MMC) / float64(baseM.MMC)),
				stats.F(res.Metrics.MC / baseM.MC),
				stats.F(mean / baseTime),
				stats.F(std / baseTime)})
		}
		c.progressf("  fig5: partitioner %s done\n", p)
		return group, nil
	})
	if err != nil {
		return "", err
	}
	for _, group := range rows {
		for _, row := range group {
			out.AddRow(row...)
		}
	}
	return render(out), nil
}

func render(t *stats.Table) string {
	var sb renderBuffer
	t.Fprint(&sb)
	return string(sb)
}

type renderBuffer []byte

func (b *renderBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

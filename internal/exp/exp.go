// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§IV) on the simulated
// substrate, at configurable scale. The cmds and the benchmark
// harness are thin wrappers around this package.
package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/partitioners"
	"repro/internal/taskgraph"
	"repro/internal/torus"

	topomap "repro"
)

// Config scales an experiment run. The zero value is not usable; use
// DefaultConfig (laptop-scale, minutes) or PaperConfig (hours).
type Config struct {
	// Tier selects dataset matrix sizes.
	Tier gen.Tier
	// TorusDims are the machine dimensions.
	TorusDims [3]int
	// ProcsPerNode is the per-node capacity (paper: 16).
	ProcsPerNode int
	// PartCounts are the processor counts swept (paper: 1024..16384).
	PartCounts []int
	// Matrices restricts the dataset (nil = all 25).
	Matrices []string
	// Allocations is the number of distinct sparse allocations.
	Allocations int
	// Reps is the number of noisy simulation repetitions (paper: 5).
	Reps int
	// Seed drives every random choice.
	Seed int64
	// Out receives the rendered tables.
	Out io.Writer
	// Progress, when non-nil, receives progress lines.
	Progress io.Writer
}

// DefaultConfig is sized to regenerate every figure in minutes.
func DefaultConfig() Config {
	return Config{
		Tier:         gen.Small,
		TorusDims:    [3]int{8, 8, 8},
		ProcsPerNode: 16,
		PartCounts:   []int{256, 512, 1024},
		Matrices: []string{
			"cagelike-mid", "rgg-small", "mesh2d-a", "mesh3d-a",
			"social-b", "struct-a", "circuit-a", "web-a", "opt-a",
		},
		Allocations: 3,
		Reps:        5,
		Seed:        1,
	}
}

// TinyConfig is sized for unit tests and benchmarks (seconds).
func TinyConfig() Config {
	return Config{
		Tier:         gen.Tiny,
		TorusDims:    [3]int{6, 6, 6},
		ProcsPerNode: 16,
		PartCounts:   []int{64, 128},
		Matrices:     []string{"cagelike", "mesh2d-a", "social-b"},
		Allocations:  2,
		Reps:         3,
		Seed:         1,
	}
}

// PaperConfig approaches the paper's scale (large matrices, part
// counts up to 4096); expect hours.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Tier = gen.Large
	c.TorusDims = [3]int{16, 12, 16}
	c.PartCounts = []int{1024, 2048, 4096}
	c.Matrices = nil // all 25
	c.Allocations = 5
	return c
}

func (c Config) matrices() []string {
	if c.Matrices != nil {
		return c.Matrices
	}
	return gen.Names()
}

func (c Config) torus() *torus.Torus {
	return torus.NewHopper3D(c.TorusDims[0], c.TorusDims[1], c.TorusDims[2])
}

// commMappers are the mappers of Figures 4 and 5 (SMAP is excluded
// from those plots in the paper "for clarity").
func commMappers() []topomap.Mapper {
	return []topomap.Mapper{topomap.DEF, topomap.TMAP, topomap.UG,
		topomap.UWH, topomap.UMC, topomap.UMMC}
}

// Suite runs multiple experiments over one shared pipeline cache, so
// a full -all run partitions each (matrix, partitioner, k) case only
// once.
type Suite struct {
	cfg Config
	c   *cache
}

// NewSuite prepares a shared-cache experiment suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{cfg: cfg, c: newCache(cfg)}
}

// cache memoizes the expensive pipeline stages within one experiment.
// All methods are safe for concurrent use: lookups and stores hold the
// mutex, the deterministic computations run outside it (two goroutines
// racing the same missing key at worst duplicate work — the warm
// phases below deduplicate their case lists, so that does not happen
// in practice).
type cache struct {
	cfg      Config
	mu       sync.Mutex
	matrices map[string]*topomap.Matrix
	tgs      map[string]*topomap.TaskGraph      // matrix|partitioner|k
	allocs   map[string]*alloc.Allocation       // nodes|seed
	engines  map[*alloc.Allocation]*engineEntry // per cached allocation
	pmu      sync.Mutex                         // serializes progress lines
}

// engineEntry builds an allocation's engine exactly once: unlike the
// other cache stages, the engine's route precomputation is expensive
// enough (O(nodes²) pairs) that racing workers must not duplicate it.
type engineEntry struct {
	once sync.Once
	eng  *topomap.Engine
	err  error
}

func newCache(cfg Config) *cache {
	return &cache{
		cfg:      cfg,
		matrices: map[string]*topomap.Matrix{},
		tgs:      map[string]*topomap.TaskGraph{},
		allocs:   map[string]*alloc.Allocation{},
		engines:  map[*alloc.Allocation]*engineEntry{},
	}
}

func (c *cache) progressf(format string, args ...interface{}) {
	if c.cfg.Progress == nil {
		return
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	fmt.Fprintf(c.cfg.Progress, format, args...)
}

func (c *cache) matrixOf(name string) (*topomap.Matrix, error) {
	c.mu.Lock()
	m, ok := c.matrices[name]
	c.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := topomap.GenerateMatrix(name, c.cfg.Tier)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.matrices[name] = m
	c.mu.Unlock()
	return m, nil
}

func (c *cache) taskGraphOf(name string, p partitioners.Name, k int) (*topomap.TaskGraph, error) {
	key := fmt.Sprintf("%s|%s|%d", name, p, k)
	c.mu.Lock()
	tg, ok := c.tgs[key]
	c.mu.Unlock()
	if ok {
		return tg, nil
	}
	m, err := c.matrixOf(name)
	if err != nil {
		return nil, err
	}
	if k > m.Rows {
		return nil, errSkip // not enough rows for this part count
	}
	start := time.Now()
	part, err := partitioners.Run(p, m, k, c.cfg.Seed)
	if err != nil {
		return nil, err
	}
	tg, err = taskgraph.Build(m, part, k)
	if err != nil {
		return nil, err
	}
	c.progressf("  partitioned %s with %s into %d parts (%.1fs)\n",
		name, p, k, time.Since(start).Seconds())
	c.mu.Lock()
	c.tgs[key] = tg
	c.mu.Unlock()
	return tg, nil
}

func (c *cache) allocOf(t *torus.Torus, nodes int, seed int64) (*alloc.Allocation, error) {
	key := fmt.Sprintf("%d|%d", nodes, seed)
	c.mu.Lock()
	a, ok := c.allocs[key]
	c.mu.Unlock()
	if ok {
		return a, nil
	}
	a, err := alloc.Generate(t, nodes, alloc.Config{
		Mode:         alloc.Sparse,
		Seed:         seed,
		ProcsPerNode: c.cfg.ProcsPerNode,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.allocs[key] = a
	c.mu.Unlock()
	return a, nil
}

// tgCase identifies one partitioning case of the pipeline.
type tgCase struct {
	name string
	p    partitioners.Name
	k    int
}

// warmTaskGraphs partitions every missing case in parallel, so the
// figures' serial reporting loops run against a warm cache. Cases a
// matrix is too small for are skipped, exactly as the serial path
// does. The case list is deduplicated, so no work is done twice.
func (s *Suite) warmTaskGraphs(cases []tgCase) error {
	seen := map[tgCase]bool{}
	uniq := cases[:0]
	for _, cs := range cases {
		if !seen[cs] {
			seen[cs] = true
			uniq = append(uniq, cs)
		}
	}
	return parallel.ForEach(len(uniq), 0, func(i int) error {
		_, err := s.c.taskGraphOf(uniq[i].name, uniq[i].p, uniq[i].k)
		if err == errSkip {
			return nil
		}
		return err
	})
}

// errSkip marks part counts a matrix is too small for (the paper
// similarly drops 6 matrices at 16384 parts).
var errSkip = fmt.Errorf("exp: matrix too small for part count")

// engineOf returns the shared mapping engine of a cached allocation,
// building it (and its cached routing state) exactly once on first
// use. Allocations are cached per Suite, so keying by pointer is
// exact; the engine is immutable and shared by every concurrent
// mapCase on the allocation.
func (c *cache) engineOf(topo *torus.Torus, a *alloc.Allocation) (*topomap.Engine, error) {
	c.mu.Lock()
	e, ok := c.engines[a]
	if !ok {
		e = &engineEntry{}
		c.engines[a] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.eng, e.err = topomap.NewEngine(topo, a) })
	return e.eng, e.err
}

// mapCase runs one (task graph, allocation, mapper) case through the
// allocation's shared engine and returns the mapping result plus the
// wall-clock mapping time (routing-state precomputation excluded — it
// is amortized over every case on the allocation).
func (c *cache) mapCase(mapper topomap.Mapper, tg *topomap.TaskGraph, topo *torus.Torus, a *alloc.Allocation, seed int64) (*topomap.MapResult, time.Duration, error) {
	eng, err := c.engineOf(topo, a)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := eng.Run(topomap.Request{Mapper: mapper, Tasks: tg, Seed: seed})
	return res, time.Since(start), err
}

// metricValue extracts a named metric for normalized reporting.
func metricValue(m metrics.MapMetrics, name string) float64 {
	switch name {
	case "TH":
		return float64(m.TH)
	case "WH":
		return float64(m.WH)
	case "MMC":
		return float64(m.MMC)
	case "MC":
		return m.MC
	case "AMC":
		return m.AMC
	case "AC":
		return m.AC
	}
	panic("exp: unknown metric " + name)
}

// simulate runs the requested simulator with c.Reps noisy repetitions
// and returns the mean and standard deviation.
func (c *cache) simulate(kind string, tg *topomap.TaskGraph, topo *torus.Torus, pl *metrics.Placement, bytesPerUnit float64, iters int) (mean, std float64) {
	return netsim.Repeat(c.cfg.Reps, c.cfg.Seed*131, func(seed int64) float64 {
		p := netsim.Params{Seed: seed}
		if kind == "comm" {
			return netsim.CommOnly(tg.G, topo, pl, bytesPerUnit, p).Seconds
		}
		return netsim.SpMV(tg.G, topo, pl, iters, p).Seconds
	})
}

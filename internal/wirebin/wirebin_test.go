package wirebin

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func frame(t *testing.T, encode func(*Writer)) (byte, []byte) {
	t.Helper()
	w := GetWriter()
	defer PutWriter(w)
	encode(w)
	msgType, payload, err := DecodeHeader(w.Bytes(), 1<<20)
	if err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}
	// Copy: the writer goes back to the pool.
	return msgType, append([]byte(nil), payload...)
}

func TestMapReqRoundTrip(t *testing.T) {
	topo := GetWriter()
	AppendTopology(topo, &Topology{Kind: TopoTorus, Dims: []int32{6, 6, 6}, BW: []float64{9.38e9, 4.68e9, 9.38e9}})
	id := Fingerprint(topo.Bytes())

	in := &MapReq{
		Mapper:      "UWH",
		Seed:        42,
		Flags:       FlagRefine | FlagTrace,
		TimeoutMS:   1500,
		Parallelism: 4,
		Topo:        FullSection(topo.Bytes()),
		Alloc:       RefSection(id),
		Tasks:       ResendSection([]byte{1, 2, 3}),
	}
	msgType, payload := frame(t, func(w *Writer) { EncodeMapReq(w, in) })
	if msgType != MsgMapRequest {
		t.Fatalf("msgType = %d", msgType)
	}
	out, err := DecodeMapReq(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mapper != in.Mapper || out.Seed != in.Seed || out.Flags != in.Flags ||
		out.TimeoutMS != in.TimeoutMS || out.Parallelism != in.Parallelism {
		t.Fatalf("scalar mismatch: %+v", out)
	}
	if out.Topo.Mode != SectionFull || !bytes.Equal(out.Topo.Body, topo.Bytes()) {
		t.Fatalf("topology section mismatch")
	}
	gotID, ok := out.Alloc.IsRef()
	if !ok || gotID != id {
		t.Fatalf("allocation ref mismatch")
	}
	if out.Tasks.Mode != SectionResend || !bytes.Equal(out.Tasks.Body, []byte{1, 2, 3}) {
		t.Fatalf("tasks resend mismatch")
	}

	dt, err := DecodeTopology(out.Topo.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Kind != TopoTorus || !reflect.DeepEqual(dt.Dims, []int32{6, 6, 6}) ||
		!reflect.DeepEqual(dt.BW, []float64{9.38e9, 4.68e9, 9.38e9}) {
		t.Fatalf("topology decode: %+v", dt)
	}
	PutWriter(topo)
}

func TestBatchReqRoundTrip(t *testing.T) {
	in := &BatchReq{
		TimeoutMS:   99,
		Parallelism: 2,
		Topo:        FullSection([]byte{7}),
		Alloc:       FullSection([]byte{8}),
		Tasks:       FullSection([]byte{9}),
		Items: []BatchItem{
			{Mapper: "UG", Seed: 1, Flags: FlagRefine},
			{Mapper: "RCB", Seed: 2},
		},
	}
	_, payload := frame(t, func(w *Writer) { EncodeBatchReq(w, in) })
	out, err := DecodeBatchReq(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Items, in.Items) {
		t.Fatalf("items: %+v", out.Items)
	}
}

func TestRemapReqRoundTrip(t *testing.T) {
	in := &RemapReq{
		Fingerprint:    "map:deadbeef",
		Mapper:         "UWH",
		Seed:           7,
		Flags:          FlagRankfile,
		FenceThreshold: 1.25,
		TimeoutMS:      2000,
		Parallelism:    8,
		Remove:         []int32{3, 9},
		Add:            []NodeCap{{Node: 11, Procs: 16}},
		SetCapacity:    []NodeCap{{Node: 4, Procs: 8}},
		Objective:      []byte(`{"minimize":"wh"}`),
	}
	_, payload := frame(t, func(w *Writer) { EncodeRemapReq(w, in) })
	out, err := DecodeRemapReq(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint != in.Fingerprint || out.FenceThreshold != in.FenceThreshold ||
		!reflect.DeepEqual(out.Remove, in.Remove) || !reflect.DeepEqual(out.Add, in.Add) ||
		!reflect.DeepEqual(out.SetCapacity, in.SetCapacity) ||
		!bytes.Equal(out.Objective, in.Objective) || out.Sim != nil {
		t.Fatalf("remap decode: %+v", out)
	}
	if out.Flags&FlagObjective == 0 || out.Flags&FlagSim != 0 {
		t.Fatalf("flags = %x", out.Flags)
	}
}

func TestMapRespRoundTrip(t *testing.T) {
	in := &MapResp{
		Mapper:      "UWH",
		Flags:       RespCacheHit,
		GroupOf:     []int32{0, 0, 1, 1},
		NodeOf:      []int32{5, 9},
		AllocNodes:  []int32{5, 9, 12},
		Metrics:     Metrics{TH: 1, WH: 2, MMC: 3, MC: 4.5, AMC: 5.5, AC: 6.5, ICV: 7, ICM: 8, MNRV: 9, MNRM: 10, UsedLinks: 11},
		FineWHGain:  -3,
		FineVolGain: 17,
		ElapsedMS:   0.25,
		Fingerprint: "map:cafe",
		Rankfile:    []byte("0,1\n"),
		TraceJSON:   []byte(`[{"name":"map"}]`),
	}
	_, payload := frame(t, func(w *Writer) { EncodeMapResp(w, in) })
	out, err := DecodeMapResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Encode folds the presence bits into Flags; mirror before the
	// deep compare.
	in.Flags |= RespRankfile | RespTrace
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("map response:\n got  %+v\n want %+v", out, in)
	}
}

func TestBatchAndRemapRespRoundTrip(t *testing.T) {
	item := MapResp{Mapper: "UG", GroupOf: []int32{0}, NodeOf: []int32{1}, AllocNodes: []int32{1}, Fingerprint: "map:1"}
	bin := &BatchResp{Flags: RespCacheHit, ElapsedMS: 3.5, Results: []MapResp{item, item}}
	_, payload := frame(t, func(w *Writer) { EncodeBatchResp(w, bin) })
	bout, err := DecodeBatchResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bout, bin) {
		t.Fatalf("batch response mismatch")
	}

	rin := &RemapResp{MapResp: item, PrevScore: 1, WarmScore: 2, ColdScore: 3, PairsReused: 4, PairsTotal: 5, MigratedTasks: 6}
	rin.Flags |= RespWarm
	_, payload = frame(t, func(w *Writer) { EncodeRemapResp(w, rin) })
	rout, err := DecodeRemapResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rout, rin) {
		t.Fatalf("remap response mismatch")
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	in := &ErrorFrame{Status: 404, Missing: SecTopology | SecTasks, Message: "intern miss"}
	msgType, payload := frame(t, func(w *Writer) { EncodeError(w, in) })
	if msgType != MsgError {
		t.Fatalf("msgType = %d", msgType)
	}
	out, err := DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("error frame: %+v", out)
	}
}

func TestAllocationRoundTrip(t *testing.T) {
	cases := []*Allocation{
		{Form: AllocExplicit, Nodes: []int32{1, 2, 3}, CapsForm: CapsDefault},
		{Form: AllocExplicit, Nodes: []int32{1, 2, 3}, CapsForm: CapsUniform, UniformProcs: 8},
		{Form: AllocExplicit, Nodes: []int32{1, 2}, CapsForm: CapsPerNode, ProcsPerNode: []int32{4, 12}},
		{Form: AllocSparse, SparseNodes: 64, Seed: -9},
	}
	for i, in := range cases {
		w := GetWriter()
		AppendAllocation(w, in)
		out, err := DecodeAllocation(w.Bytes())
		PutWriter(w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("case %d:\n got  %+v\n want %+v", i, out, in)
		}
	}
}

func TestTasksCSRRoundTrip(t *testing.T) {
	// 3 tasks, ring: 0→1, 1→2, 2→0.
	xadj := []int32{0, 1, 2, 3}
	adj := []int32{1, 2, 0}
	ew := []int64{10, 20, 30}
	w := GetWriter()
	defer PutWriter(w)
	AppendTasksCSR(w, xadj, adj, ew, nil, nil, 0)
	v, err := ParseTasks(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v.N != 3 || v.M != 3 {
		t.Fatalf("n=%d m=%d", v.N, v.M)
	}
	for i := 0; i <= 3; i++ {
		if v.Xadj(i) != int(xadj[i]) {
			t.Fatalf("xadj[%d] = %d", i, v.Xadj(i))
		}
	}
	for j := 0; j < 3; j++ {
		if v.Adj(j) != adj[j] || v.EW(j) != ew[j] {
			t.Fatalf("edge %d = (%d,%d)", j, v.Adj(j), v.EW(j))
		}
	}
}

func TestTasksCSRRejectsBadShapes(t *testing.T) {
	enc := func(xadj, adj []int32, ew []int64) []byte {
		w := GetWriter()
		defer PutWriter(w)
		AppendTasksCSR(w, xadj, adj, ew, nil, nil, 0)
		return append([]byte(nil), w.Bytes()...)
	}
	cases := map[string][]byte{
		"xadj not starting at 0":  enc([]int32{1, 2, 3, 3}, []int32{1, 2, 0}, []int64{1, 1, 1}),
		"xadj decreasing":         enc([]int32{0, 2, 1, 3}, []int32{1, 2, 0}, []int64{1, 1, 1}),
		"xadj not reaching m":     enc([]int32{0, 1, 2, 2}, []int32{1, 2, 0}, []int64{1, 1, 1}),
		"truncated body":          enc([]int32{0, 1, 2, 3}, []int32{1, 2, 0}, []int64{1, 1, 1})[:20],
		"trailing bytes":          append(enc([]int32{0, 1, 2, 3}, []int32{1, 2, 0}, []int64{1, 1, 1}), 0),
		"declared m too large":    binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 3), 1<<30),
		"empty body":              {},
		"header only, no arrays":  binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 2), 1),
		"negative xadj via int32": enc([]int32{0, -1, 2, 3}, []int32{1, 2, 0}, []int64{1, 1, 1}),
	}
	for name, body := range cases {
		if _, err := ParseTasks(body); err == nil {
			t.Errorf("%s: ParseTasks accepted a malformed body", name)
		}
	}
}

func TestDecodeHeaderRejects(t *testing.T) {
	good := func() []byte {
		w := GetWriter()
		defer PutWriter(w)
		EncodeError(w, &ErrorFrame{Status: 400, Message: "x"})
		return append([]byte(nil), w.Bytes()...)
	}()
	if _, _, err := DecodeHeader(good, 1<<20); err != nil {
		t.Fatalf("good frame rejected: %v", err)
	}

	bad := map[string][]byte{
		"short":           good[:HeaderLen-1],
		"magic":           append([]byte("nope"), good[4:]...),
		"version":         append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"msgtype zero":    func() []byte { b := append([]byte(nil), good...); b[5] = 0; return b }(),
		"msgtype unknown": func() []byte { b := append([]byte(nil), good...); b[5] = 200; return b }(),
		"length mismatch": func() []byte { b := append([]byte(nil), good...); b[8]++; return b }(),
		"truncated body":  good[:len(good)-1],
	}
	for name, f := range bad {
		if _, _, err := DecodeHeader(f, 1<<20); err == nil {
			t.Errorf("%s: DecodeHeader accepted a malformed frame", name)
		}
	}
	// Payload over the caller's limit.
	if _, _, err := DecodeHeader(good, 1); err == nil {
		t.Error("payload over maxPayload accepted")
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint([]byte("hello"))
	b := Fingerprint([]byte("hello"))
	c := Fingerprint([]byte("hellp"))
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if a == c {
		t.Fatal("distinct bodies collided")
	}
}

package wirebin

// Fuzz targets for the frame decoders: every decoder must reject
// truncated, oversized, version-skewed and garbage frames with an
// error — never a panic, an out-of-bounds read, or an allocation
// larger than a small constant factor of the input. The allocation
// bound is checked structurally: every decoded slice was read element
// by element out of the payload, so its length can never exceed the
// payload size.

import (
	"bytes"
	"testing"
)

// fuzzMaxPayload caps the declared payload length during fuzzing, the
// same way the service caps request bodies.
const fuzzMaxPayload = 1 << 20

// boundSlice fails the fuzz run if a decoded slice claims more
// elements than the payload could possibly have carried — the
// over-allocation guard the Count bound exists for.
func boundSlice(t *testing.T, what string, n, elemSize, payload int) {
	t.Helper()
	if n*elemSize > payload {
		t.Fatalf("%s: %d elements x %d bytes decoded out of a %d-byte payload", what, n, elemSize, payload)
	}
}

// seedFrames returns one valid frame per message type, so the fuzzer
// starts from the interesting part of the input space.
func seedFrames() [][]byte {
	var frames [][]byte
	add := func(encode func(*Writer)) {
		w := GetWriter()
		encode(w)
		frames = append(frames, append([]byte(nil), w.Bytes()...))
		PutWriter(w)
	}

	topoBody := func() []byte {
		w := GetWriter()
		defer PutWriter(w)
		AppendTopology(w, &Topology{Kind: TopoTorus, Dims: []int32{4, 4, 4}, BW: []float64{1e9, 1e9, 1e9}})
		return append([]byte(nil), w.Bytes()...)
	}()
	allocBody := func() []byte {
		w := GetWriter()
		defer PutWriter(w)
		AppendAllocation(w, &Allocation{Form: AllocExplicit, Nodes: []int32{1, 5, 9}, CapsForm: CapsUniform, UniformProcs: 16})
		return append([]byte(nil), w.Bytes()...)
	}()
	tasksBody := func() []byte {
		w := GetWriter()
		defer PutWriter(w)
		AppendTasksCSR(w, []int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, []int64{64, 2, 512}, []float64{0, 0, 1, 0, 0, 1}, 2)
		return append([]byte(nil), w.Bytes()...)
	}()

	add(func(w *Writer) {
		EncodeMapReq(w, &MapReq{
			Mapper: "UWH", Seed: 7, Flags: FlagRankfile, TimeoutMS: 500, Parallelism: 2,
			Topo:  FullSection(topoBody),
			Alloc: RefSection(Fingerprint(allocBody)),
			Tasks: ResendSection(tasksBody),
		})
	})
	add(func(w *Writer) {
		EncodeBatchReq(w, &BatchReq{
			Topo: FullSection(topoBody), Alloc: FullSection(allocBody), Tasks: FullSection(tasksBody),
			Items: []BatchItem{{Mapper: "UWH", Seed: 1}, {Mapper: "UMC", Seed: 2, Flags: FlagRefine}},
		})
	})
	add(func(w *Writer) {
		EncodeRemapReq(w, &RemapReq{
			Fingerprint: "map:abc", Mapper: "UWH", Seed: 1, FenceThreshold: 0.05,
			Remove:    []int32{3},
			Add:       []NodeCap{{Node: 9, Procs: 16}},
			Objective: []byte(`{"minimize":"mc"}`),
		})
	})
	add(func(w *Writer) {
		EncodeMapResp(w, &MapResp{
			Mapper: "UWH", GroupOf: []int32{0, 1}, NodeOf: []int32{5, 9}, AllocNodes: []int32{5, 9},
			Metrics: Metrics{TH: 10, WH: 20, MC: 1.5, UsedLinks: 4}, Fingerprint: "map:abc",
			Rankfile: []byte("# MPICH_RANK_ORDER\n0,1\n"),
		})
	})
	add(func(w *Writer) {
		EncodeBatchResp(w, &BatchResp{ElapsedMS: 1.25, Results: []MapResp{{Mapper: "UWH", GroupOf: []int32{0}}}})
	})
	add(func(w *Writer) {
		EncodeRemapResp(w, &RemapResp{
			MapResp:   MapResp{Mapper: "UWH", Flags: RespWarm, GroupOf: []int32{0}},
			PrevScore: 1, WarmScore: 2, ColdScore: 3, PairsReused: 4, PairsTotal: 5, MigratedTasks: 6,
		})
	})
	add(func(w *Writer) {
		EncodeError(w, &ErrorFrame{Status: 404, Missing: SecTopology | SecTasks, Message: "intern miss"})
	})
	return frames
}

// FuzzFrameDecoders drives every message decoder through the shared
// header check: whatever survives DecodeHeader must decode cleanly or
// error — and on success, every decoded slice stays bounded by the
// payload that carried it.
func FuzzFrameDecoders(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
		// Mutated variants: truncated payload, corrupted version byte,
		// inflated declared length.
		if len(frame) > HeaderLen+2 {
			f.Add(frame[:len(frame)-2])
		}
		skew := append([]byte(nil), frame...)
		skew[4] = 0xFF
		f.Add(skew)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := DecodeHeader(data, fuzzMaxPayload)
		if err != nil {
			return
		}
		p := len(payload)
		switch msgType {
		case MsgMapRequest:
			m, err := DecodeMapReq(payload)
			if err != nil {
				return
			}
			for _, s := range []Section{m.Topo, m.Alloc, m.Tasks} {
				boundSlice(t, "section body", len(s.Body), 1, p)
			}
		case MsgBatchRequest:
			b, err := DecodeBatchReq(payload)
			if err != nil {
				return
			}
			if len(b.Items) > maxBatchItems {
				t.Fatalf("decoded %d batch items past the %d cap", len(b.Items), maxBatchItems)
			}
			boundSlice(t, "batch items", len(b.Items), 11, p)
		case MsgRemapRequest:
			m, err := DecodeRemapReq(payload)
			if err != nil {
				return
			}
			boundSlice(t, "remove", len(m.Remove), 4, p)
			boundSlice(t, "add", len(m.Add), 8, p)
			boundSlice(t, "set_capacity", len(m.SetCapacity), 8, p)
		case MsgMapResponse:
			m, err := DecodeMapResp(payload)
			if err != nil {
				return
			}
			boundMapResp(t, m, p)
		case MsgBatchResponse:
			b, err := DecodeBatchResp(payload)
			if err != nil {
				return
			}
			boundSlice(t, "batch results", len(b.Results), 64, p)
			for i := range b.Results {
				boundMapResp(t, &b.Results[i], p)
			}
		case MsgRemapResponse:
			m, err := DecodeRemapResp(payload)
			if err != nil {
				return
			}
			boundMapResp(t, &m.MapResp, p)
		case MsgError:
			e, err := DecodeError(payload)
			if err != nil {
				return
			}
			boundSlice(t, "error message", len(e.Message), 1, p)
		}
	})
}

func boundMapResp(t *testing.T, m *MapResp, payload int) {
	t.Helper()
	boundSlice(t, "group_of", len(m.GroupOf), 4, payload)
	boundSlice(t, "node_of", len(m.NodeOf), 4, payload)
	boundSlice(t, "alloc_nodes", len(m.AllocNodes), 4, payload)
	boundSlice(t, "rankfile", len(m.Rankfile), 1, payload)
	boundSlice(t, "trace", len(m.TraceJSON), 1, payload)
}

// FuzzParseTasks hammers the zero-copy CSR validator: a body that
// parses must be fully walkable through the accessors — every row
// monotone, every edge slot reachable, every load readable when the
// optional loads block is present, every coordinate readable when the
// coordinates block is — because the hot path indexes them without
// bounds checks afterwards. Whatever parses must also re-encode
// byte-identically from the decoded view, so the legacy, loads- and
// coordinate-extended forms stay canonical on the wire.
func FuzzParseTasks(f *testing.F) {
	valid := func(xadj, adj []int32, ew, loads []int64, coords []float64, dim int) []byte {
		w := GetWriter()
		defer PutWriter(w)
		AppendTasksCSR(w, xadj, adj, ew, loads, coords, dim)
		return append([]byte(nil), w.Bytes()...)
	}
	f.Add(valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, nil, nil, 0))
	f.Add(valid([]int32{0, 0}, nil, nil, nil, nil, 0))
	// Loads-extended bodies: skewed, all-unit, and single-task.
	f.Add(valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, []int64{64, 2, 512}, nil, 0))
	f.Add(valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, []int64{1, 1, 1}, nil, 0))
	f.Add(valid([]int32{0, 0}, nil, nil, []int64{7}, nil, 0))
	// Coordinate-extended bodies: 2D, 3D, and loads + coords combined.
	f.Add(valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, nil, []float64{0, 0, 1, 0, 0.5, 1}, 2))
	f.Add(valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, nil, []float64{0, 0, 0, 1, 0, 0, 0, 1, 0}, 3))
	f.Add(valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, []int64{64, 2, 512}, []float64{0, 0, 1, 0, 0, 1}, 2))
	f.Add(valid([]int32{0, 0}, nil, nil, nil, []float64{3.25, -7}, 2))
	// A truncated loads block and a corrupted trailing tag byte.
	full := valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, []int64{64, 2, 512}, nil, 0)
	f.Add(full[:len(full)-3])
	bad := append([]byte(nil), full...)
	bad[len(bad)-25] = 0x7F
	f.Add(bad)
	// A truncated coords block, a bad dim byte, and out-of-order tags
	// (coords before loads) — all must be rejected, never panic.
	both := valid([]int32{0, 1, 2, 2}, []int32{1, 2}, []int64{10, 3}, []int64{64, 2, 512}, []float64{0, 0, 1, 0, 0, 1}, 2)
	f.Add(both[:len(both)-5])
	badDim := append([]byte(nil), both...)
	badDim[len(badDim)-49] = 9
	f.Add(badDim)
	swapped := valid([]int32{0, 0}, nil, nil, nil, []float64{1, 2}, 2)
	swapped = append(swapped, TasksLoadsPerTask, 0, 0, 0, 0, 0, 0, 0, 1)
	f.Add(swapped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		view, err := ParseTasks(body)
		if err != nil {
			return
		}
		if 4*(view.N+1)+12*view.M > len(body)+8 {
			t.Fatalf("n=%d m=%d view claims more than the %d-byte body", view.N, view.M, len(body))
		}
		edges := 0
		for v := 0; v < view.N; v++ {
			lo, hi := view.Xadj(v), view.Xadj(v+1)
			if lo < 0 || hi < lo || hi > view.M {
				t.Fatalf("row %d: [%d,%d) escapes m=%d after validation", v, lo, hi, view.M)
			}
			for j := lo; j < hi; j++ {
				_ = view.Adj(j)
				_ = view.EW(j)
				edges++
			}
		}
		if edges != view.M {
			t.Fatalf("rows cover %d edge slots, header says %d", edges, view.M)
		}
		if view.HasLoads() && 8*view.N > len(body) {
			t.Fatalf("n=%d loads decoded out of a %d-byte body", view.N, len(body))
		}
		if view.HasCoords() && 8*view.N*view.CoordDim() > len(body) {
			t.Fatalf("n=%d dim=%d coords decoded out of a %d-byte body", view.N, view.CoordDim(), len(body))
		}
		// Round-trip: rebuild the CSR arrays through the accessors and
		// re-encode. Any accepted body is canonical, so the bytes must
		// match exactly — including the presence, order, and values of
		// the optional loads and coordinates blocks.
		xadj := make([]int32, view.N+1)
		for i := range xadj {
			xadj[i] = int32(view.Xadj(i))
		}
		adj := make([]int32, view.M)
		ew := make([]int64, view.M)
		for j := 0; j < view.M; j++ {
			adj[j], ew[j] = view.Adj(j), view.EW(j)
		}
		var loads []int64
		if view.HasLoads() {
			loads = make([]int64, view.N)
			for i := range loads {
				loads[i] = view.Load(i)
			}
		}
		var coords []float64
		dim := view.CoordDim()
		if view.HasCoords() {
			coords = make([]float64, view.N*dim)
			for i := 0; i < view.N; i++ {
				for d := 0; d < dim; d++ {
					coords[i*dim+d] = view.Coord(i, d)
				}
			}
		}
		w := GetWriter()
		defer PutWriter(w)
		AppendTasksCSR(w, xadj, adj, ew, loads, coords, dim)
		if !bytes.Equal(w.Bytes(), body) {
			t.Fatalf("re-encode diverged: %d bytes in, %d out (loads=%v coords=%v)", len(body), w.Len(), view.HasLoads(), view.HasCoords())
		}
	})
}

// FuzzDecodeTopology exercises the topology section decoder.
func FuzzDecodeTopology(f *testing.F) {
	for _, topo := range []Topology{
		{Kind: TopoTorus, Dims: []int32{8, 8, 8}, BW: []float64{1e9, 1e9, 1e9}},
		{Kind: TopoMesh, Dims: []int32{4, 4}, BW: []float64{1e9, 2e9}},
		{Kind: TopoFatTree, K: 8, BWHost: 5e9, Taper: 2},
		{Kind: TopoDragonfly, H: 3, BWHost: 5e9, BWLocal: 5e9, BWGlobal: 1e9},
	} {
		w := GetWriter()
		AppendTopology(w, &topo)
		f.Add(append([]byte(nil), w.Bytes()...))
		PutWriter(w)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		tp, err := DecodeTopology(body)
		if err != nil {
			return
		}
		if len(tp.Dims)*4 > len(body) || len(tp.BW)*8 > len(body) {
			t.Fatalf("dims=%d bw=%d decoded out of a %d-byte body", len(tp.Dims), len(tp.BW), len(body))
		}
	})
}

// FuzzDecodeAllocation exercises the allocation section decoder.
func FuzzDecodeAllocation(f *testing.F) {
	for _, alloc := range []Allocation{
		{Form: AllocExplicit, Nodes: []int32{1, 2, 3}, CapsForm: CapsDefault},
		{Form: AllocExplicit, Nodes: []int32{4}, CapsForm: CapsUniform, UniformProcs: 16},
		{Form: AllocExplicit, Nodes: []int32{7, 9}, CapsForm: CapsPerNode, ProcsPerNode: []int32{8, 16}},
		{Form: AllocSparse, SparseNodes: 32, Seed: 9},
	} {
		w := GetWriter()
		AppendAllocation(w, &alloc)
		f.Add(append([]byte(nil), w.Bytes()...))
		PutWriter(w)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		a, err := DecodeAllocation(body)
		if err != nil {
			return
		}
		if len(a.Nodes)*4 > len(body) || len(a.ProcsPerNode)*4 > len(body) {
			t.Fatalf("nodes=%d caps=%d decoded out of a %d-byte body", len(a.Nodes), len(a.ProcsPerNode), len(body))
		}
		if a.Form == AllocExplicit && a.CapsForm == CapsPerNode && len(a.ProcsPerNode) != len(a.Nodes) {
			t.Fatalf("per-node capacities %d != nodes %d after validation", len(a.ProcsPerNode), len(a.Nodes))
		}
	})
}

// TestSeedFramesRoundTrip keeps the fuzz seeds honest: every seed
// must decode back to a frame whose re-encoding is byte-identical —
// a corrupted seed would quietly shrink fuzz coverage.
func TestSeedFramesRoundTrip(t *testing.T) {
	for i, frame := range seedFrames() {
		msgType, payload, err := DecodeHeader(frame, fuzzMaxPayload)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		w := GetWriter()
		switch msgType {
		case MsgMapRequest:
			m, err := DecodeMapReq(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeMapReq(w, m)
		case MsgBatchRequest:
			m, err := DecodeBatchReq(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeBatchReq(w, m)
		case MsgRemapRequest:
			m, err := DecodeRemapReq(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeRemapReq(w, m)
		case MsgMapResponse:
			m, err := DecodeMapResp(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeMapResp(w, m)
		case MsgBatchResponse:
			m, err := DecodeBatchResp(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeBatchResp(w, m)
		case MsgRemapResponse:
			m, err := DecodeRemapResp(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeRemapResp(w, m)
		case MsgError:
			m, err := DecodeError(payload)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			EncodeError(w, m)
		}
		if !bytes.Equal(w.Bytes(), frame) {
			t.Fatalf("seed %d (type %d): re-encode diverged", i, msgType)
		}
		PutWriter(w)
	}
}

package wirebin

import (
	"bytes"
	"testing"
)

// Deterministic unit tests of the coordinates trailing block —
// the fuzz suite covers the adversarial space; these pin the exact
// canonical spellings.

func encTasks(loads []int64, coords []float64, dim int) []byte {
	w := GetWriter()
	defer PutWriter(w)
	AppendTasksCSR(w, []int32{0, 1, 2, 3}, []int32{1, 2, 0}, []int64{10, 20, 30}, loads, coords, dim)
	return append([]byte(nil), w.Bytes()...)
}

// TestTasksCoordsRoundTrip: the coordinates block survives the
// parse in 2D and 3D, alone and stacked after a loads block, and a
// canonical re-encode of the parsed view is byte-identical.
func TestTasksCoordsRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		loads  []int64
		coords []float64
		dim    int
	}{
		{"2d", nil, []float64{0, 0, 1.5, 0, 0.25, 2}, 2},
		{"3d", nil, []float64{0, 0, 0, 1, 0, 0, 0, 1, 2.5}, 3},
		{"loads+3d", []int64{7, 8, 9}, []float64{0, 0, 0, 1, 0, 0, 0, 1, 2.5}, 3},
	}
	for _, tc := range cases {
		body := encTasks(tc.loads, tc.coords, tc.dim)
		v, err := ParseTasks(body)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !v.HasCoords() || v.CoordDim() != tc.dim {
			t.Fatalf("%s: HasCoords=%v dim=%d, want dim %d", tc.name, v.HasCoords(), v.CoordDim(), tc.dim)
		}
		for i := 0; i < v.N; i++ {
			for d := 0; d < tc.dim; d++ {
				if got := v.Coord(i, d); got != tc.coords[i*tc.dim+d] {
					t.Fatalf("%s: coord[%d][%d] = %g, want %g", tc.name, i, d, got, tc.coords[i*tc.dim+d])
				}
			}
		}
		// Canonical re-encode from the parsed view: byte-identical.
		var loads []int64
		if v.HasLoads() {
			loads = make([]int64, v.N)
			for i := range loads {
				loads[i] = v.Load(i)
			}
		}
		coords := make([]float64, v.N*tc.dim)
		for i := 0; i < v.N; i++ {
			for d := 0; d < tc.dim; d++ {
				coords[i*tc.dim+d] = v.Coord(i, d)
			}
		}
		if again := encTasks(loads, coords, tc.dim); !bytes.Equal(again, body) {
			t.Fatalf("%s: re-encode diverged from the original body", tc.name)
		}
	}
}

// TestTasksCoordsCanonicalAbsence pins the degeneracy at the byte
// level: a nil coordinate slice emits zero trailing bytes, so
// coordinate-free bodies are byte-identical to pre-coordinate ones
// and keep their intern fingerprints.
func TestTasksCoordsCanonicalAbsence(t *testing.T) {
	bare := encTasks(nil, nil, 0)
	withC := encTasks(nil, []float64{0, 0, 1, 0, 0, 1}, 2)
	if !bytes.HasPrefix(withC, bare) {
		t.Fatal("coordinates block is not a pure suffix of the coordinate-free body")
	}
	if want := len(bare) + 1 + 1 + 8*3*2; len(withC) != want {
		t.Fatalf("coordinate body is %d bytes, want %d (tag + dim + 6 f64)", len(withC), want)
	}
	v, err := ParseTasks(bare)
	if err != nil {
		t.Fatal(err)
	}
	if v.HasCoords() || v.CoordDim() != 0 {
		t.Fatal("coordinate-free body parsed with coordinates")
	}
}

// TestTasksCoordsRejects: malformed coordinate tails — bad dim,
// truncation, duplicate and out-of-order tags — all fail the parse.
func TestTasksCoordsRejects(t *testing.T) {
	good := encTasks(nil, []float64{0, 0, 1, 0, 0, 1}, 2)
	base := encTasks(nil, nil, 0)
	loadsFirst := encTasks([]int64{1, 2, 3}, nil, 0)

	badDim := append(append([]byte(nil), base...), TasksCoords, 4)
	badDim = append(badDim, make([]byte, 8*4*3)...)

	dup := append(append([]byte(nil), good...), good[len(base):]...)

	// Coords tag before loads tag: descending order.
	outOfOrder := append(append([]byte(nil), good...), loadsFirst[len(base):]...)

	cases := map[string][]byte{
		"dim 4":                badDim,
		"dim 0":                append(append([]byte(nil), base...), TasksCoords, 0),
		"truncated coords":     good[:len(good)-4],
		"tag only":             append(append([]byte(nil), base...), TasksCoords),
		"duplicate coords tag": dup,
		"loads after coords":   outOfOrder,
	}
	for name, body := range cases {
		if _, err := ParseTasks(body); err == nil {
			t.Errorf("%s: ParseTasks accepted a malformed coordinate tail", name)
		}
	}
}

// Package wirebin is the length-prefixed binary frame protocol of the
// mapd /v2 endpoints — the envelope that makes the request path cheap
// enough for the per-job-launch service the paper argues for. The JSON
// protocol re-parses the full topology/task-graph spec on every
// request; at ~2k allocs per warm solve that envelope dominates. A
// binary frame instead carries the hot arrays (CSR task-graph rows,
// allocation node/capacity vectors) verbatim in little-endian, behind
// a fixed 12-byte header, and lets repeat clients replace any of the
// three big sections (topology, allocation, task graph) with the
// 16-byte content fingerprint of the encoded section body. The server
// keeps a bounded intern table of section bodies it has seen; a
// fingerprint it cannot resolve costs an explicit miss frame (HTTP
// 404) and the client resends the full section — the same
// miss-and-resend recovery the /v1/remap fingerprint flow uses.
//
// Frame layout (all integers little-endian):
//
//	offset size  field
//	0      4     magic "mpb1"
//	4      1     version (1)
//	5      1     message type (MsgMapRequest, ...)
//	6      2     flags (reserved, 0)
//	8      4     payload length
//	12     ...   payload
//
// Sections inside a payload are mode-tagged: a full body (mode 0), a
// 16-byte fingerprint reference (mode 1), or a full body resent after
// a reported miss (mode 2 — counted separately by the server so
// operators can see recovery traffic). Every decoder in this package
// is bounds-checked against the payload it was handed and never
// allocates more than a small constant factor of the frame size, so
// adversarial frames (truncated, oversized counts, version skew,
// garbage) fail with an error, not a panic or an allocation spike —
// the property the fuzz targets pin.
package wirebin

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Magic opens every frame.
const Magic = "mpb1"

// Version is the protocol version this package speaks. A frame with a
// different version is rejected, so the header byte is the upgrade
// hinge: a future v2 decoder can dispatch on it.
const Version = 1

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 12

// ContentType is the HTTP content type of a binary frame.
const ContentType = "application/x-mapd-frame"

// Message types.
const (
	MsgMapRequest byte = iota + 1
	MsgMapResponse
	MsgBatchRequest
	MsgBatchResponse
	MsgRemapRequest
	MsgRemapResponse
	MsgError
)

// Section modes: how one of the three big request sections travels.
const (
	// SectionFull carries the encoded body verbatim.
	SectionFull byte = 0
	// SectionRef carries the 16-byte fingerprint of a body the server
	// is expected to have interned.
	SectionRef byte = 1
	// SectionResend carries the body verbatim after the server
	// reported an intern miss — semantically SectionFull, counted
	// separately.
	SectionResend byte = 2
)

// Section identity bits, used in error frames to name which interned
// sections missed.
const (
	SecTopology   byte = 1
	SecAllocation byte = 2
	SecTasks      byte = 4
)

// FingerprintLen is the length of an intern fingerprint.
const FingerprintLen = 16

// Fingerprint returns the 16-byte content fingerprint of an encoded
// section body (FNV-1a 128). Client and server compute it over the
// identical bytes, so the id needs no registration round-trip.
func Fingerprint(body []byte) [FingerprintLen]byte {
	h := fnv.New128a()
	h.Write(body)
	var out [FingerprintLen]byte
	h.Sum(out[:0])
	return out
}

// Hash64 is an inline FNV-1a 64 accumulator for hot-path identity
// keys (solve memo, client section memo): value-receiver chaining
// keeps it in registers, where hash/fnv's interface writes force
// every input buffer to escape. Start from Hash64Init and fold with
// Str/U64; read the result by converting to uint64.
type Hash64 uint64

// Hash64Init is the FNV-1a 64 offset basis.
const Hash64Init Hash64 = 14695981039346656037

const hash64Prime = 1099511628211

// Str folds a string into the accumulator.
func (h Hash64) Str(s string) Hash64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ Hash64(s[i])) * hash64Prime
	}
	return h
}

// U64 folds a 64-bit value, little-endian.
func (h Hash64) U64(v uint64) Hash64 {
	for i := 0; i < 8; i++ {
		h = (h ^ Hash64(byte(v>>(8*i)))) * hash64Prime
	}
	return h
}

// bufPool recycles frame scratch: encoders borrow a Writer, decoders
// (through the service) borrow the byte slice a request body is read
// into. Steady-state framing allocates nothing.
var bufPool = sync.Pool{New: func() any { return &Writer{b: make([]byte, 0, 4096)} }}

// GetWriter borrows a pooled frame writer.
func GetWriter() *Writer {
	w := bufPool.Get().(*Writer)
	w.b = w.b[:0]
	return w
}

// PutWriter returns a writer borrowed with GetWriter. The caller must
// be done with every slice Bytes returned.
func PutWriter(w *Writer) { bufPool.Put(w) }

// Writer appends protocol primitives to a growable frame buffer.
type Writer struct{ b []byte }

// Bytes returns the encoded frame so far; the slice aliases the
// writer's buffer and is invalidated by further writes or PutWriter.
func (w *Writer) Bytes() []byte { return w.b }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.b) }

// Write implements io.Writer, so text renderers (rankfiles) can
// stream into a frame.
func (w *Writer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *Writer) U8(v byte)     { w.b = append(w.b, v) }
func (w *Writer) U16(v uint16)  { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *Writer) U32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *Writer) U64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *Writer) I64(v int64)   { w.U64(uint64(v)) }
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// I32s appends a []int32 verbatim (little-endian), length-prefixed.
func (w *Writer) I32s(s []int32) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.U32(uint32(v))
	}
}

// I64s appends a []int64 verbatim (little-endian), length-prefixed.
func (w *Writer) I64s(s []int64) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.U64(uint64(v))
	}
}

// F64s appends a []float64 verbatim (little-endian IEEE-754),
// length-prefixed.
func (w *Writer) F64s(s []float64) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.U64(math.Float64bits(v))
	}
}

// Str8 appends a short string (length byte + bytes).
func (w *Writer) Str8(s string) {
	if len(s) > 255 {
		s = s[:255]
	}
	w.U8(byte(len(s)))
	w.b = append(w.b, s...)
}

// Blob appends a length-prefixed byte blob (u32 length).
func (w *Writer) Blob(p []byte) {
	w.U32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// BeginFrame writes the frame header with a zero payload length;
// EndFrame patches the length in once the payload is complete.
func (w *Writer) BeginFrame(msgType byte) {
	w.b = append(w.b, Magic...)
	w.U8(Version)
	w.U8(msgType)
	w.U16(0) // flags, reserved
	w.U32(0) // payload length, patched by EndFrame
}

// EndFrame patches the payload length of the frame opened by
// BeginFrame.
func (w *Writer) EndFrame() {
	binary.LittleEndian.PutUint32(w.b[8:12], uint32(len(w.b)-HeaderLen))
}

// BeginBlob reserves a u32 length slot and returns its offset;
// EndBlob patches the slot with the bytes written since.
func (w *Writer) BeginBlob() int {
	w.U32(0)
	return len(w.b)
}

// EndBlob patches the length slot reserved at off by BeginBlob.
func (w *Writer) EndBlob(off int) {
	binary.LittleEndian.PutUint32(w.b[off-4:off], uint32(len(w.b)-off))
}

// Reader consumes protocol primitives from a frame payload with
// accumulated error state: after the first failure every read returns
// a zero value, so decoders chain reads and check Err once per
// structural boundary.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode failure.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Done reports whether the payload was fully consumed without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.b) }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wirebin: "+format, args...)
	}
}

// take returns the next n bytes as a view into the payload.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *Reader) U8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *Reader) U16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (r *Reader) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (r *Reader) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count reads a u32 element count and bounds it: the elements must
// fit in the remaining payload at elemSize bytes each, so a forged
// count can never drive an oversized allocation.
func (r *Reader) Count(elemSize int, what string) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(r.Remaining()) {
		r.fail("%s count %d exceeds remaining payload (%d bytes)", what, n, r.Remaining())
		return 0
	}
	return int(n)
}

// I32s reads a length-prefixed []int32 into a fresh slice.
func (r *Reader) I32s(what string) []int32 {
	n := r.Count(4, what)
	if r.err != nil || n == 0 {
		return nil
	}
	v := r.take(4 * n)
	if v == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(v[4*i:]))
	}
	return out
}

// I64s reads a length-prefixed []int64 into a fresh slice.
func (r *Reader) I64s(what string) []int64 {
	n := r.Count(8, what)
	if r.err != nil || n == 0 {
		return nil
	}
	v := r.take(8 * n)
	if v == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(v[8*i:]))
	}
	return out
}

// F64s reads a length-prefixed []float64 into a fresh slice.
func (r *Reader) F64s(what string) []float64 {
	n := r.Count(8, what)
	if r.err != nil || n == 0 {
		return nil
	}
	v := r.take(8 * n)
	if v == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(v[8*i:]))
	}
	return out
}

// Str8 reads a short string (copied out of the payload).
func (r *Reader) Str8(what string) string {
	n := int(r.U8())
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}

// Blob reads a length-prefixed byte blob as a view into the payload.
func (r *Reader) Blob(what string) []byte {
	n := r.Count(1, what)
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// DecodeHeader validates a frame header and returns its message type
// and payload view. maxPayload guards the declared length against the
// caller's body limit; the payload must be exactly the declared
// length.
func DecodeHeader(frame []byte, maxPayload int) (msgType byte, payload []byte, err error) {
	if len(frame) < HeaderLen {
		return 0, nil, fmt.Errorf("wirebin: frame shorter than the %d-byte header", HeaderLen)
	}
	if string(frame[:4]) != Magic {
		return 0, nil, fmt.Errorf("wirebin: bad magic %q", frame[:4])
	}
	if frame[4] != Version {
		return 0, nil, fmt.Errorf("wirebin: version %d, this server speaks %d", frame[4], Version)
	}
	msgType = frame[5]
	if msgType == 0 || msgType > MsgError {
		return 0, nil, fmt.Errorf("wirebin: unknown message type %d", msgType)
	}
	n := binary.LittleEndian.Uint32(frame[8:12])
	if int64(n) > int64(maxPayload) {
		return 0, nil, fmt.Errorf("wirebin: declared payload %d exceeds the %d-byte limit", n, maxPayload)
	}
	if int(n) != len(frame)-HeaderLen {
		return 0, nil, fmt.Errorf("wirebin: declared payload %d bytes, frame carries %d", n, len(frame)-HeaderLen)
	}
	return msgType, frame[HeaderLen : HeaderLen+int(n)], nil
}

// Section is one mode-tagged request section: either a fingerprint
// reference or a full body (possibly a resend). Body views the frame.
type Section struct {
	Mode byte
	Body []byte
}

// IsRef reports whether the section is a fingerprint reference and
// returns the id.
func (s Section) IsRef() (id [FingerprintLen]byte, ok bool) {
	if s.Mode != SectionRef {
		return id, false
	}
	copy(id[:], s.Body)
	return id, true
}

// readSection decodes one mode-tagged section.
func (r *Reader) readSection(what string) Section {
	mode := r.U8()
	switch mode {
	case SectionFull, SectionResend:
		return Section{Mode: mode, Body: r.Blob(what)}
	case SectionRef:
		return Section{Mode: mode, Body: r.take(FingerprintLen)}
	default:
		r.fail("%s: unknown section mode %d", what, mode)
		return Section{}
	}
}

// writeSection emits a full (or resend) section from an encoded body.
func (w *Writer) writeSection(mode byte, body []byte) {
	w.U8(mode)
	w.Blob(body)
}

// writeRef emits a fingerprint-reference section.
func (w *Writer) writeRef(id [FingerprintLen]byte) {
	w.U8(SectionRef)
	w.b = append(w.b, id[:]...)
}

package wirebin

// Message payloads. The structs here mirror the concepts of the JSON
// wire (internal/service) but hold the hot arrays directly: slices in
// a decoded message alias the frame buffer where views are possible
// (CSR task graphs) and are fresh minimal copies otherwise; slices in
// a message being encoded are written verbatim and never copied. The
// service converts only the cold, tiny parts (topology parameters,
// objective blobs) to its spec structs — the canonicalization and
// cache-key derivation stay shared with the JSON path, which is what
// makes the two protocols provably equivalent.

// Request flag bits (shared by map requests, batch items, and remap
// requests).
const (
	FlagRefine     uint16 = 1 << 0
	FlagFineRefine uint16 = 1 << 1
	FlagTrace      uint16 = 1 << 2
	FlagRankfile   uint16 = 1 << 3
	// FlagObjective / FlagSim mark the optional JSON blobs of a remap
	// request as present.
	FlagObjective uint16 = 1 << 4
	FlagSim       uint16 = 1 << 5
	// FlagBalance asks for the makespan-aware load-repair stage
	// (topomap.Solve.Balance).
	FlagBalance uint16 = 1 << 6
)

// Response flag bits.
const (
	RespCacheHit     uint16 = 1 << 0
	RespRankfile     uint16 = 1 << 1
	RespTrace        uint16 = 1 << 2
	RespWarm         uint16 = 1 << 3
	RespFenceTripped uint16 = 1 << 4
)

// MapReq is the binary form of a POST /v2/map request. The three big
// sections travel mode-tagged (full body or intern fingerprint).
type MapReq struct {
	Mapper      string
	Seed        int64
	Flags       uint16
	TimeoutMS   int64
	Parallelism uint32
	Topo        Section
	Alloc       Section
	Tasks       Section
}

// EncodeMapReq appends the request as one complete frame.
func EncodeMapReq(w *Writer, r *MapReq) {
	w.BeginFrame(MsgMapRequest)
	w.Str8(r.Mapper)
	w.I64(r.Seed)
	w.U16(r.Flags)
	w.I64(r.TimeoutMS)
	w.U32(r.Parallelism)
	w.writeSection2(r.Topo)
	w.writeSection2(r.Alloc)
	w.writeSection2(r.Tasks)
	w.EndFrame()
}

// DecodeMapReq parses a MsgMapRequest payload.
func DecodeMapReq(payload []byte) (*MapReq, error) {
	r := NewReader(payload)
	m := &MapReq{
		Mapper:      r.Str8("mapper"),
		Seed:        r.I64(),
		Flags:       r.U16(),
		TimeoutMS:   r.I64(),
		Parallelism: r.U32(),
		Topo:        r.readSection("topology"),
		Alloc:       r.readSection("allocation"),
		Tasks:       r.readSection("tasks"),
	}
	return m, r.finish("map request")
}

// BatchItem is one mapper run of a binary batch request.
type BatchItem struct {
	Mapper string
	Seed   int64
	Flags  uint16
}

// BatchReq is the binary form of a POST /v2/map/batch request.
type BatchReq struct {
	TimeoutMS   int64
	Parallelism uint32
	Topo        Section
	Alloc       Section
	Tasks       Section
	Items       []BatchItem
}

// maxBatchItems bounds the item count of one batch frame; each item
// is a full solve, so the count must not be attacker-elastic.
const maxBatchItems = 4096

// EncodeBatchReq appends the request as one complete frame.
func EncodeBatchReq(w *Writer, r *BatchReq) {
	w.BeginFrame(MsgBatchRequest)
	w.I64(r.TimeoutMS)
	w.U32(r.Parallelism)
	w.writeSection2(r.Topo)
	w.writeSection2(r.Alloc)
	w.writeSection2(r.Tasks)
	w.U32(uint32(len(r.Items)))
	for _, it := range r.Items {
		w.Str8(it.Mapper)
		w.I64(it.Seed)
		w.U16(it.Flags)
	}
	w.EndFrame()
}

// DecodeBatchReq parses a MsgBatchRequest payload.
func DecodeBatchReq(payload []byte) (*BatchReq, error) {
	r := NewReader(payload)
	b := &BatchReq{
		TimeoutMS:   r.I64(),
		Parallelism: r.U32(),
		Topo:        r.readSection("topology"),
		Alloc:       r.readSection("allocation"),
		Tasks:       r.readSection("tasks"),
	}
	n := r.Count(11, "batch items") // 1 len byte + 8 seed + 2 flags minimum per item
	if r.err == nil && n > maxBatchItems {
		r.fail("batch items %d exceed the %d-item frame limit", n, maxBatchItems)
	}
	for i := 0; i < n && r.err == nil; i++ {
		b.Items = append(b.Items, BatchItem{
			Mapper: r.Str8("item mapper"),
			Seed:   r.I64(),
			Flags:  r.U16(),
		})
	}
	return b, r.finish("batch request")
}

// NodeCap is one (node, capacity) pair of an allocation delta.
type NodeCap struct {
	Node  int32
	Procs uint32
}

// RemapReq is the binary form of a POST /v2/remap request: the
// previous result travels as its fingerprint, the delta as verbatim
// arrays, and the rarely-set objective/sim specs as JSON blobs — they
// are cold configuration, not hot data.
type RemapReq struct {
	Fingerprint    string
	Mapper         string
	Seed           int64
	Flags          uint16
	FenceThreshold float64
	TimeoutMS      int64
	Parallelism    uint32
	Remove         []int32
	Add            []NodeCap
	SetCapacity    []NodeCap
	Objective      []byte
	Sim            []byte
}

func (w *Writer) nodeCaps(s []NodeCap) {
	w.U32(uint32(len(s)))
	for _, c := range s {
		w.U32(uint32(c.Node))
		w.U32(c.Procs)
	}
}

func (r *Reader) nodeCaps(what string) []NodeCap {
	n := r.Count(8, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]NodeCap, n)
	for i := range out {
		out[i] = NodeCap{Node: int32(r.U32()), Procs: r.U32()}
	}
	return out
}

// EncodeRemapReq appends the request as one complete frame.
func EncodeRemapReq(w *Writer, r *RemapReq) {
	w.BeginFrame(MsgRemapRequest)
	w.Str8(r.Fingerprint)
	w.Str8(r.Mapper)
	w.I64(r.Seed)
	flags := r.Flags
	if len(r.Objective) > 0 {
		flags |= FlagObjective
	}
	if len(r.Sim) > 0 {
		flags |= FlagSim
	}
	w.U16(flags)
	w.F64(r.FenceThreshold)
	w.I64(r.TimeoutMS)
	w.U32(r.Parallelism)
	w.I32s(r.Remove)
	w.nodeCaps(r.Add)
	w.nodeCaps(r.SetCapacity)
	if flags&FlagObjective != 0 {
		w.Blob(r.Objective)
	}
	if flags&FlagSim != 0 {
		w.Blob(r.Sim)
	}
	w.EndFrame()
}

// DecodeRemapReq parses a MsgRemapRequest payload.
func DecodeRemapReq(payload []byte) (*RemapReq, error) {
	r := NewReader(payload)
	m := &RemapReq{
		Fingerprint: r.Str8("fingerprint"),
		Mapper:      r.Str8("mapper"),
		Seed:        r.I64(),
		Flags:       r.U16(),
	}
	m.FenceThreshold = r.F64()
	m.TimeoutMS = r.I64()
	m.Parallelism = r.U32()
	m.Remove = r.I32s("delta remove")
	m.Add = r.nodeCaps("delta add")
	m.SetCapacity = r.nodeCaps("delta set_capacity")
	if m.Flags&FlagObjective != 0 {
		m.Objective = r.Blob("objective")
	}
	if m.Flags&FlagSim != 0 {
		m.Sim = r.Blob("sim")
	}
	return m, r.finish("remap request")
}

// Metrics is the fixed-width metrics block of a result frame,
// mirroring the JSON wire's metrics object field for field.
type Metrics struct {
	TH, WH, MMC          int64
	MC, AMC, AC          float64
	ICV, ICM, MNRV, MNRM int64
	UsedLinks            uint32
	// Heterogeneous-processor metrics (compute makespan, load
	// imbalance); see topomap.MapMetrics.
	Makespan, LoadImbalance float64
}

func (w *Writer) metrics(m *Metrics) {
	w.I64(m.TH)
	w.I64(m.WH)
	w.I64(m.MMC)
	w.F64(m.MC)
	w.F64(m.AMC)
	w.F64(m.AC)
	w.I64(m.ICV)
	w.I64(m.ICM)
	w.I64(m.MNRV)
	w.I64(m.MNRM)
	w.U32(m.UsedLinks)
	w.F64(m.Makespan)
	w.F64(m.LoadImbalance)
}

func (r *Reader) metrics() (m Metrics) {
	m.TH = r.I64()
	m.WH = r.I64()
	m.MMC = r.I64()
	m.MC = r.F64()
	m.AMC = r.F64()
	m.AC = r.F64()
	m.ICV = r.I64()
	m.ICM = r.I64()
	m.MNRV = r.I64()
	m.MNRM = r.I64()
	m.UsedLinks = r.U32()
	m.Makespan = r.F64()
	m.LoadImbalance = r.F64()
	return m
}

// MapResp is the binary form of one mapping result. On the encode
// side the slices alias engine-owned result arrays — the frame writer
// copies them into the output buffer directly, with no intermediate
// response struct of its own. TraceJSON is the stage timeline as a
// JSON blob (trace echo is an opt-in debugging path, not hot data).
type MapResp struct {
	Mapper      string
	Flags       uint16
	GroupOf     []int32
	NodeOf      []int32
	AllocNodes  []int32
	Metrics     Metrics
	FineWHGain  int64
	FineVolGain int64
	ElapsedMS   float64
	Fingerprint string
	Rankfile    []byte
	TraceJSON   []byte
}

// appendMapResp writes the body shared by map, batch-item and remap
// results.
func (w *Writer) appendMapResp(m *MapResp) {
	flags := m.Flags
	if len(m.Rankfile) > 0 {
		flags |= RespRankfile
	}
	if len(m.TraceJSON) > 0 {
		flags |= RespTrace
	}
	w.Str8(m.Mapper)
	w.U16(flags)
	w.I32s(m.GroupOf)
	w.I32s(m.NodeOf)
	w.I32s(m.AllocNodes)
	w.metrics(&m.Metrics)
	w.I64(m.FineWHGain)
	w.I64(m.FineVolGain)
	w.F64(m.ElapsedMS)
	w.Str8(m.Fingerprint)
	if flags&RespRankfile != 0 {
		w.Blob(m.Rankfile)
	}
	if flags&RespTrace != 0 {
		w.Blob(m.TraceJSON)
	}
}

func (r *Reader) mapResp() (m MapResp) {
	m.Mapper = r.Str8("mapper")
	m.Flags = r.U16()
	m.GroupOf = r.I32s("group_of")
	m.NodeOf = r.I32s("node_of")
	m.AllocNodes = r.I32s("alloc_nodes")
	m.Metrics = r.metrics()
	m.FineWHGain = r.I64()
	m.FineVolGain = r.I64()
	m.ElapsedMS = r.F64()
	m.Fingerprint = r.Str8("fingerprint")
	if m.Flags&RespRankfile != 0 {
		m.Rankfile = r.Blob("rankfile")
	}
	if m.Flags&RespTrace != 0 {
		m.TraceJSON = r.Blob("trace")
	}
	return m
}

// EncodeMapResp appends the result as one complete frame.
func EncodeMapResp(w *Writer, m *MapResp) {
	w.BeginFrame(MsgMapResponse)
	w.appendMapResp(m)
	w.EndFrame()
}

// DecodeMapResp parses a MsgMapResponse payload.
func DecodeMapResp(payload []byte) (*MapResp, error) {
	r := NewReader(payload)
	m := r.mapResp()
	return &m, r.finish("map response")
}

// BatchResp is the binary form of a batch result: the per-item
// results inline, in request order.
type BatchResp struct {
	Flags     uint16
	ElapsedMS float64
	Results   []MapResp
}

// EncodeBatchResp appends the batch result as one complete frame.
func EncodeBatchResp(w *Writer, b *BatchResp) {
	w.BeginFrame(MsgBatchResponse)
	w.U16(b.Flags)
	w.F64(b.ElapsedMS)
	w.U32(uint32(len(b.Results)))
	for i := range b.Results {
		w.appendMapResp(&b.Results[i])
	}
	w.EndFrame()
}

// DecodeBatchResp parses a MsgBatchResponse payload.
func DecodeBatchResp(payload []byte) (*BatchResp, error) {
	r := NewReader(payload)
	b := &BatchResp{Flags: r.U16(), ElapsedMS: r.F64()}
	// An item result is ≥ 90 bytes (three array lengths, the metrics
	// block, two length bytes); 64 is a safe per-item floor for the
	// count bound.
	n := r.Count(64, "batch results")
	for i := 0; i < n && r.err == nil; i++ {
		b.Results = append(b.Results, r.mapResp())
	}
	return b, r.finish("batch response")
}

// RemapResp is the binary form of an incremental-remap result: the
// winning mapping plus the warm-vs-cold accounting.
type RemapResp struct {
	MapResp
	PrevScore     float64
	WarmScore     float64
	ColdScore     float64
	PairsReused   uint32
	PairsTotal    uint32
	MigratedTasks uint32
}

// EncodeRemapResp appends the remap result as one complete frame.
// Warm/fence-tripped travel in MapResp.Flags (RespWarm,
// RespFenceTripped).
func EncodeRemapResp(w *Writer, m *RemapResp) {
	w.BeginFrame(MsgRemapResponse)
	w.appendMapResp(&m.MapResp)
	w.F64(m.PrevScore)
	w.F64(m.WarmScore)
	w.F64(m.ColdScore)
	w.U32(m.PairsReused)
	w.U32(m.PairsTotal)
	w.U32(m.MigratedTasks)
	w.EndFrame()
}

// DecodeRemapResp parses a MsgRemapResponse payload.
func DecodeRemapResp(payload []byte) (*RemapResp, error) {
	r := NewReader(payload)
	m := &RemapResp{MapResp: r.mapResp()}
	m.PrevScore = r.F64()
	m.WarmScore = r.F64()
	m.ColdScore = r.F64()
	m.PairsReused = r.U32()
	m.PairsTotal = r.U32()
	m.MigratedTasks = r.U32()
	return m, r.finish("remap response")
}

// ErrorFrame is the binary form of a non-2xx outcome: the HTTP status
// the JSON path would have used, a bitmask naming the interned
// sections the server could not resolve (SecTopology | SecAllocation
// | SecTasks — non-zero means "resend those sections in full"), and
// the human-readable message.
type ErrorFrame struct {
	Status  uint16
	Missing byte
	Message string
}

// EncodeError appends the error as one complete frame.
func EncodeError(w *Writer, e *ErrorFrame) {
	w.BeginFrame(MsgError)
	w.U16(e.Status)
	w.U8(e.Missing)
	w.Blob([]byte(e.Message))
	w.EndFrame()
}

// DecodeError parses a MsgError payload.
func DecodeError(payload []byte) (*ErrorFrame, error) {
	r := NewReader(payload)
	e := &ErrorFrame{Status: r.U16(), Missing: r.U8()}
	e.Message = string(r.Blob("message"))
	return e, r.finish("error frame")
}

// finish closes a message decode: the payload must be fully consumed,
// so trailing garbage is an error rather than silently ignored bytes.
func (r *Reader) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		r.fail("%s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return r.err
}

// writeSection2 emits a section in whatever mode it carries.
func (w *Writer) writeSection2(s Section) {
	switch s.Mode {
	case SectionRef:
		w.U8(SectionRef)
		w.b = append(w.b, s.Body...)
	default:
		w.writeSection(s.Mode, s.Body)
	}
}

// FullSection wraps an encoded body as a full-mode section.
func FullSection(body []byte) Section { return Section{Mode: SectionFull, Body: body} }

// ResendSection wraps an encoded body as a resend-mode section.
func ResendSection(body []byte) Section { return Section{Mode: SectionResend, Body: body} }

// RefSection wraps a fingerprint as a reference-mode section.
func RefSection(id [FingerprintLen]byte) Section {
	return Section{Mode: SectionRef, Body: append([]byte(nil), id[:]...)}
}

package wirebin

// Section bodies: the encodings of the three big, internable request
// parts. Bodies are encoded standalone (not inline in a frame) so the
// client can fingerprint the exact bytes it would send and switch to
// a 16-byte reference once the server has seen them.

import (
	"encoding/binary"
	"math"
)

// Topology family kinds.
const (
	TopoTorus byte = iota + 1
	TopoMesh
	TopoFatTree
	TopoDragonfly
)

// Topology is the binary form of a network spec. Encode it from a
// NORMALIZED spec (defaults filled): normalization is what makes the
// body — and therefore its intern fingerprint — canonical for a given
// network.
type Topology struct {
	Kind byte
	// Dims and BW parameterize torus/mesh.
	Dims []int32
	BW   []float64
	// K/BWHost/Taper parameterize the fat tree; H/BWHost/BWLocal/
	// BWGlobal the dragonfly.
	K        uint32
	H        uint32
	BWHost   float64
	Taper    float64
	BWLocal  float64
	BWGlobal float64
}

// AppendTopology encodes the body onto w.
func AppendTopology(w *Writer, t *Topology) {
	w.U8(t.Kind)
	switch t.Kind {
	case TopoTorus, TopoMesh:
		w.I32s(t.Dims)
		w.F64s(t.BW)
	case TopoFatTree:
		w.U32(t.K)
		w.F64(t.BWHost)
		w.F64(t.Taper)
	case TopoDragonfly:
		w.U32(t.H)
		w.F64(t.BWHost)
		w.F64(t.BWLocal)
		w.F64(t.BWGlobal)
	}
}

// DecodeTopology parses a topology section body.
func DecodeTopology(body []byte) (*Topology, error) {
	r := NewReader(body)
	t := &Topology{Kind: r.U8()}
	switch t.Kind {
	case TopoTorus, TopoMesh:
		t.Dims = r.I32s("dims")
		t.BW = r.F64s("bw")
	case TopoFatTree:
		t.K = r.U32()
		t.BWHost = r.F64()
		t.Taper = r.F64()
	case TopoDragonfly:
		t.H = r.U32()
		t.BWHost = r.F64()
		t.BWLocal = r.F64()
		t.BWGlobal = r.F64()
	default:
		r.fail("topology: unknown kind %d", t.Kind)
	}
	return t, r.finish("topology")
}

// Allocation forms.
const (
	AllocExplicit byte = 1
	AllocSparse   byte = 2
)

// Per-node capacity forms of an explicit allocation.
const (
	CapsDefault byte = 0 // server default procs-per-node
	CapsUniform byte = 1 // one u32 for every node
	CapsPerNode byte = 2 // one u32 per node, in node order
)

// AllocSpeedsPerNode tags the optional trailing speeds block of an
// explicit allocation body: one f64 speed factor per node, in node
// order. Unit-speed allocations omit the block entirely — that keeps
// every pre-heterogeneity body (and its intern fingerprint)
// byte-identical.
const AllocSpeedsPerNode byte = 1

// Allocation is the binary form of an allocation spec: the explicit
// node set a scheduler handed out (with its capacity vector and
// optionally per-node speed factors) or the parameters of a
// server-generated sparse allocation.
type Allocation struct {
	Form         byte
	Nodes        []int32
	CapsForm     byte
	UniformProcs uint32
	ProcsPerNode []int32
	Speeds       []float64
	SparseNodes  uint32
	Seed         int64
}

// AppendAllocation encodes the body onto w.
func AppendAllocation(w *Writer, a *Allocation) {
	w.U8(a.Form)
	switch a.Form {
	case AllocExplicit:
		w.I32s(a.Nodes)
		w.U8(a.CapsForm)
		switch a.CapsForm {
		case CapsUniform:
			w.U32(a.UniformProcs)
		case CapsPerNode:
			w.I32s(a.ProcsPerNode)
		}
		if len(a.Speeds) > 0 {
			w.U8(AllocSpeedsPerNode)
			w.F64s(a.Speeds)
		}
	case AllocSparse:
		w.U32(a.SparseNodes)
		w.I64(a.Seed)
	}
}

// DecodeAllocation parses an allocation section body.
func DecodeAllocation(body []byte) (*Allocation, error) {
	r := NewReader(body)
	a := &Allocation{Form: r.U8()}
	switch a.Form {
	case AllocExplicit:
		a.Nodes = r.I32s("alloc nodes")
		a.CapsForm = r.U8()
		switch a.CapsForm {
		case CapsDefault:
		case CapsUniform:
			a.UniformProcs = r.U32()
		case CapsPerNode:
			a.ProcsPerNode = r.I32s("procs_per_node")
			if r.err == nil && len(a.ProcsPerNode) != len(a.Nodes) {
				r.fail("allocation: %d nodes but %d capacities", len(a.Nodes), len(a.ProcsPerNode))
			}
		default:
			r.fail("allocation: unknown capacity form %d", a.CapsForm)
		}
		// Optional trailing speeds block; a legacy body ends here.
		if r.err == nil && r.Remaining() > 0 {
			if tag := r.U8(); tag != AllocSpeedsPerNode {
				r.fail("allocation: unknown trailing block %d", tag)
			}
			a.Speeds = r.F64s("speeds")
			if r.err == nil && len(a.Speeds) != len(a.Nodes) {
				r.fail("allocation: %d nodes but %d speeds", len(a.Nodes), len(a.Speeds))
			}
		}
	case AllocSparse:
		a.SparseNodes = r.U32()
		a.Seed = r.I64()
	default:
		r.fail("allocation: unknown form %d", a.Form)
	}
	return a, r.finish("allocation")
}

// TasksLoadsPerTask tags the optional trailing loads block of a
// task-graph body: one u64 compute load per task, in task order.
// Unit-load graphs omit the block — legacy bodies stay byte-identical
// and keep their intern fingerprints.
const TasksLoadsPerTask byte = 1

// TasksCoords tags the optional trailing coordinates block of a
// task-graph body: a dimensionality byte (2 or 3) followed by
// dim × f64 per task, in task order. Coordinate-free graphs omit the
// block — pre-coordinate bodies stay byte-identical and keep their
// intern fingerprints. Trailing blocks appear in ascending tag order
// (loads before coords), at most once each, which keeps every
// accepted body canonical.
const TasksCoords byte = 2

// AppendTasksCSR encodes a task graph body from its CSR arrays
// verbatim: n, m, xadj (n+1 × u32), adj (m × i32), ew (m × i64),
// then — when present — the tagged trailing blocks in ascending tag
// order: loads (tag byte + one u64 per task) and coordinates (tag
// byte + dim byte + n×dim f64). Encode from a canonical graph
// (graph.FromEdges / FromTriples output: adjacency sorted, self loops
// dropped, parallel edges merged, unit loads as a nil vector, absent
// coordinates as a nil slice) so the body fingerprints
// deterministically.
func AppendTasksCSR(w *Writer, xadj, adj []int32, ew []int64, loads []int64, coords []float64, dim int) {
	n := len(xadj) - 1
	w.U32(uint32(n))
	w.U32(uint32(len(adj)))
	for _, v := range xadj {
		w.U32(uint32(v))
	}
	for _, v := range adj {
		w.U32(uint32(v))
	}
	for _, v := range ew {
		w.U64(uint64(v))
	}
	if loads != nil {
		w.U8(TasksLoadsPerTask)
		for _, v := range loads {
			w.U64(uint64(v))
		}
	}
	if coords != nil {
		w.U8(TasksCoords)
		w.U8(byte(dim))
		for _, c := range coords {
			w.F64(c)
		}
	}
}

// TasksCSR is a zero-copy view over a task-graph section body: the
// accessors index straight into the frame bytes, so building the
// engine's graph needs no intermediate edge-list allocation at all.
// The view is only valid while the underlying frame buffer is.
type TasksCSR struct {
	N, M int
	xadj []byte
	adj  []byte
	ew   []byte
	// loads is the optional per-task compute-load block (nil = unit
	// loads).
	loads []byte
	// coords is the optional per-task coordinate block (nil = no
	// coordinates); dim is its dimensionality (2 or 3, 0 when absent).
	coords []byte
	dim    int
}

// ParseTasks validates the structural invariants of a task-graph body
// (counts fit the body exactly — with any combination of the tagged
// trailing blocks, in ascending tag order — and xadj is a monotone
// 0→m row index) and returns the view. Semantic limits (task-count
// cap) belong to the caller.
func ParseTasks(body []byte) (TasksCSR, error) {
	r := NewReader(body)
	var t TasksCSR
	n := int64(r.U32())
	m := int64(r.U32())
	if r.err != nil {
		return t, r.err
	}
	need := 4*(n+1) + 4*m + 8*m
	rem := int64(r.Remaining())
	if n < 0 || m < 0 {
		r.fail("tasks: negative counts n=%d m=%d", n, m)
		return t, r.err
	}
	if rem < need {
		r.fail("tasks: n=%d m=%d needs %d body bytes, have %d", n, m, need, rem)
		return t, r.err
	}
	t.N, t.M = int(n), int(m)
	t.xadj = r.take(4 * (t.N + 1))
	t.adj = r.take(4 * t.M)
	t.ew = r.take(8 * t.M)
	// Tagged trailing blocks, ascending tag order, each at most once —
	// the only spellings accepted are the canonical ones AppendTasksCSR
	// emits, so an accepted body re-encodes byte-identically.
	lastTag := byte(0)
	for r.err == nil && r.Remaining() > 0 {
		tag := r.U8()
		if tag <= lastTag {
			r.fail("tasks: trailing block %d out of order after %d", tag, lastTag)
			break
		}
		lastTag = tag
		switch tag {
		case TasksLoadsPerTask:
			t.loads = r.take(8 * t.N)
		case TasksCoords:
			dim := int(r.U8())
			if r.err == nil && dim != 2 && dim != 3 {
				r.fail("tasks: coordinate dim %d, want 2 or 3", dim)
				break
			}
			t.coords = r.take(8 * dim * t.N)
			t.dim = dim
		default:
			r.fail("tasks: unknown trailing block %d", tag)
		}
	}
	if err := r.finish("tasks"); err != nil {
		return t, err
	}
	// xadj must be a valid row index: starts at 0, non-decreasing,
	// ends at m. One pass here keeps every later accessor
	// bounds-check-free.
	prev := t.Xadj(0)
	if prev != 0 {
		r.fail("tasks: xadj[0] = %d, want 0", prev)
		return t, r.err
	}
	for i := 1; i <= t.N; i++ {
		x := t.Xadj(i)
		if x < prev || x > t.M {
			r.fail("tasks: xadj[%d] = %d not monotone in [0,%d]", i, x, t.M)
			return t, r.err
		}
		prev = x
	}
	if prev != t.M {
		r.fail("tasks: xadj[%d] = %d, want m=%d", t.N, prev, t.M)
	}
	return t, r.err
}

// Xadj returns row pointer i (0 ≤ i ≤ N).
func (t TasksCSR) Xadj(i int) int {
	return int(int32(binary.LittleEndian.Uint32(t.xadj[4*i:])))
}

// Adj returns the destination of edge slot j (0 ≤ j < M).
func (t TasksCSR) Adj(j int) int32 {
	return int32(binary.LittleEndian.Uint32(t.adj[4*j:]))
}

// EW returns the weight of edge slot j (0 ≤ j < M).
func (t TasksCSR) EW(j int) int64 {
	return int64(binary.LittleEndian.Uint64(t.ew[8*j:]))
}

// HasLoads reports whether the body carried a per-task loads block.
func (t TasksCSR) HasLoads() bool { return t.loads != nil }

// Load returns the compute load of task i (0 ≤ i < N); call only when
// HasLoads.
func (t TasksCSR) Load(i int) int64 {
	return int64(binary.LittleEndian.Uint64(t.loads[8*i:]))
}

// HasCoords reports whether the body carried a coordinates block.
func (t TasksCSR) HasCoords() bool { return t.coords != nil }

// CoordDim returns the coordinate dimensionality (2 or 3; 0 when the
// body carried no coordinates).
func (t TasksCSR) CoordDim() int { return t.dim }

// Coord returns coordinate d of task i (0 ≤ i < N, 0 ≤ d < CoordDim);
// call only when HasCoords.
func (t TasksCSR) Coord(i, d int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(t.coords[8*(i*t.dim+d):]))
}

package viz

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/fattree"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

func vizFixture(t *testing.T) (*torus.Torus, *alloc.Allocation, *graph.Graph, []int32) {
	t.Helper()
	topo := torus.NewHopper3D(4, 4, 4)
	a, err := alloc.Generate(topo, 8, alloc.Config{Mode: alloc.Sparse, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(8, 20, 50, 7)
	nodeOf := append([]int32(nil), a.Nodes...)
	return topo, a, g, nodeOf
}

func TestCongestionHistogramRenders(t *testing.T) {
	topo, _, g, nodeOf := vizFixture(t)
	pl := &metrics.Placement{NodeOf: nodeOf}
	var buf bytes.Buffer
	if err := CongestionHistogram(&buf, g, topo, pl, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "used links") {
		t.Fatalf("missing header: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 9 { // header + 8 buckets
		t.Fatalf("%d lines, want 9:\n%s", lines, out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
}

func TestCongestionHistogramBucketTotal(t *testing.T) {
	topo, _, g, nodeOf := vizFixture(t)
	pl := &metrics.Placement{NodeOf: nodeOf}
	var buf bytes.Buffer
	if err := CongestionHistogram(&buf, g, topo, pl, 4); err != nil {
		t.Fatal(err)
	}
	// Bucket counts must sum to the used-link count from the metrics.
	m := metrics.Compute(g, topo, pl)
	total := 0
	for _, line := range strings.Split(buf.String(), "\n")[1:] {
		// The count is the last purely numeric field of each bucket
		// line (the bar of '#'s may be empty).
		count := -1
		for _, f := range strings.Fields(line) {
			if c, err := strconv.Atoi(f); err == nil {
				count = c
			}
		}
		if count >= 0 {
			total += count
		}
	}
	if total != m.UsedLinks {
		t.Fatalf("histogram counts %d, used links %d\n%s", total, m.UsedLinks, buf.String())
	}
}

func TestCongestionHistogramErrors(t *testing.T) {
	topo, _, g, nodeOf := vizFixture(t)
	pl := &metrics.Placement{NodeOf: nodeOf}
	if err := CongestionHistogram(&bytes.Buffer{}, g, topo, pl, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestCongestionHistogramNoTraffic(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.FromEdges(2, []int32{0}, []int32{1}, []int64{5}, nil)
	pl := &metrics.Placement{NodeOf: []int32{3, 3}} // intra-node only
	var buf bytes.Buffer
	if err := CongestionHistogram(&buf, g, topo, pl, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no network traffic") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
}

func TestTopLinksOrderingAndConsistency(t *testing.T) {
	topo, _, g, nodeOf := vizFixture(t)
	pl := &metrics.Placement{NodeOf: nodeOf}
	hot := TopLinks(g, topo, pl, 5)
	if len(hot) == 0 {
		t.Fatal("no hot links")
	}
	m := metrics.Compute(g, topo, pl)
	if hot[0].VC != m.MC {
		t.Fatalf("hottest link VC %g != MC %g", hot[0].VC, m.MC)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].VC > hot[i-1].VC {
			t.Fatalf("links not sorted: %g before %g", hot[i-1].VC, hot[i].VC)
		}
	}
	for _, h := range hot {
		if h.From < 0 || h.To < 0 {
			t.Fatalf("torus link endpoints not decoded: %+v", h)
		}
		if h.Messages <= 0 || h.Volume <= 0 {
			t.Fatalf("degenerate hot link: %+v", h)
		}
	}
}

func TestTopLinksDecodesFatTreeEndpoints(t *testing.T) {
	ft, err := fattree.New(4, 10e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(8, 20, 40, 5)
	nodeOf := make([]int32, 8)
	for i := range nodeOf {
		nodeOf[i] = int32(i * 2)
	}
	hot := TopLinks(g, ft, &metrics.Placement{NodeOf: nodeOf}, 5)
	if len(hot) == 0 {
		t.Fatal("no hot links on fat tree")
	}
	for _, h := range hot {
		if h.From < 0 || h.To < 0 || h.From >= ft.Nodes() || h.To >= ft.Nodes() {
			t.Fatalf("fat-tree endpoints not decoded: %+v", h)
		}
	}
}

func TestFprintTopLinksRenders(t *testing.T) {
	topo, _, g, nodeOf := vizFixture(t)
	pl := &metrics.Placement{NodeOf: nodeOf}
	var buf bytes.Buffer
	if err := FprintTopLinks(&buf, g, topo, pl, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(") || !strings.Contains(buf.String(), "VC(s)") {
		t.Fatalf("missing coordinates or header:\n%s", buf.String())
	}
}

func TestSliceMapRenders(t *testing.T) {
	topo, a, g, nodeOf := vizFixture(t)
	var buf bytes.Buffer
	if err := SliceMap(&buf, topo, a, g, nodeOf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if lines := strings.Count(out, "\n"); lines != 5 { // header + 4 rows
		t.Fatalf("%d lines, want 5:\n%s", lines, out)
	}
	// At least one hosting node somewhere across all slices.
	hosting := 0
	for z := 0; z < 4; z++ {
		var b bytes.Buffer
		if err := SliceMap(&b, topo, a, g, nodeOf, z); err != nil {
			t.Fatal(err)
		}
		for _, ch := range b.String() {
			if ch >= 'a' && ch <= 'z' {
				hosting++
			}
		}
	}
	if hosting < len(nodeOf) {
		t.Fatalf("only %d hosting cells rendered for %d supertasks", hosting, len(nodeOf))
	}
}

func TestSliceMapErrors(t *testing.T) {
	topo, a, g, nodeOf := vizFixture(t)
	if err := SliceMap(&bytes.Buffer{}, topo, a, g, nodeOf, -1); err == nil {
		t.Fatal("negative slice accepted")
	}
	if err := SliceMap(&bytes.Buffer{}, topo, a, g, nodeOf, 4); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
	topo5 := torus.New([]int{2, 2, 2, 2}, []float64{1e9, 1e9, 1e9, 1e9})
	if err := SliceMap(&bytes.Buffer{}, topo5, a, g, nodeOf, 0); err == nil {
		t.Fatal("non-3D torus accepted")
	}
}

// Package viz renders text diagnostics of a mapping: per-link
// congestion histograms, the hottest links with their endpoints, and
// allocation/placement maps of torus slices. These are the operator
// tools of the library — the quickest way to see *where* a mapping
// concentrates traffic, not just its aggregate metrics.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

// linkLoads computes the volume routed over every directed link.
func linkLoads(tg *graph.Graph, topo torus.Topology, pl *metrics.Placement) []int64 {
	load := make([]int64, topo.Links())
	var route []int32
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			route = topo.Route(int(a), int(b), route[:0])
			for _, l := range route {
				load[l] += tg.EdgeWeight(int(i))
			}
		}
	}
	return load
}

// histogramBars is the rendered width of the largest bucket.
const histogramBars = 50

// CongestionHistogram writes an ASCII histogram of the volume
// congestion (load/bandwidth) of the used links, in the given number
// of equal-width buckets. It reports the spread the MC/AC metrics
// summarize: a good congestion refinement shortens the right tail.
func CongestionHistogram(w io.Writer, tg *graph.Graph, topo torus.Topology, pl *metrics.Placement, buckets int) error {
	if buckets < 1 {
		return fmt.Errorf("viz: need at least one bucket")
	}
	load := linkLoads(tg, topo, pl)
	var vcs []float64
	maxVC := 0.0
	for l, v := range load {
		if v == 0 {
			continue
		}
		vc := float64(v) / topo.LinkBW(l)
		vcs = append(vcs, vc)
		if vc > maxVC {
			maxVC = vc
		}
	}
	if len(vcs) == 0 {
		_, err := fmt.Fprintln(w, "no network traffic")
		return err
	}
	counts := make([]int, buckets)
	for _, vc := range vcs {
		b := int(float64(buckets) * vc / maxVC)
		if b == buckets {
			b--
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	fmt.Fprintf(w, "link volume congestion over %d used links (max %.4g s)\n", len(vcs), maxVC)
	for b := 0; b < buckets; b++ {
		lo := maxVC * float64(b) / float64(buckets)
		hi := maxVC * float64(b+1) / float64(buckets)
		bar := strings.Repeat("#", counts[b]*histogramBars/maxCount)
		if _, err := fmt.Fprintf(w, "[%8.3g,%8.3g) %6d %s\n", lo, hi, counts[b], bar); err != nil {
			return err
		}
	}
	return nil
}

// HotLink describes one of the most congested links.
type HotLink struct {
	Link     int
	From, To int
	Volume   int64
	Messages int64
	VC       float64 // volume / bandwidth, seconds
}

// TopLinks returns the n most volume-congested links, hottest first
// (ties broken by link id for determinism).
func TopLinks(tg *graph.Graph, topo torus.Topology, pl *metrics.Placement, n int) []HotLink {
	load := linkLoads(tg, topo, pl)
	msgs := make([]int64, topo.Links())
	var route []int32
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			route = topo.Route(int(a), int(b), route[:0])
			for _, l := range route {
				msgs[l]++
			}
		}
	}
	// Endpoint decoding: the torus exposes (from, dim, dir, to); the
	// indirect topologies (fat tree, dragonfly) expose (from, to).
	type linkInfo2 interface{ LinkInfo(int) (int, int) }
	var hot []HotLink
	for l, v := range load {
		if v == 0 {
			continue
		}
		hl := HotLink{Link: l, Volume: v, Messages: msgs[l], VC: float64(v) / topo.LinkBW(l)}
		switch tp := topo.(type) {
		case *torus.Torus:
			hl.From, _, _, hl.To = tp.LinkInfo(l)
		case linkInfo2:
			hl.From, hl.To = tp.LinkInfo(l)
		default:
			hl.From, hl.To = -1, -1
		}
		hot = append(hot, hl)
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].VC != hot[j].VC {
			return hot[i].VC > hot[j].VC
		}
		return hot[i].Link < hot[j].Link
	})
	if n < len(hot) {
		hot = hot[:n]
	}
	return hot
}

// FprintTopLinks renders TopLinks as a table with torus coordinates.
func FprintTopLinks(w io.Writer, tg *graph.Graph, topo *torus.Torus, pl *metrics.Placement, n int) error {
	hot := TopLinks(tg, topo, pl, n)
	if len(hot) == 0 {
		_, err := fmt.Fprintln(w, "no network traffic")
		return err
	}
	fmt.Fprintf(w, "%-6s %-16s %-16s %12s %10s %12s\n", "link", "from", "to", "volume", "messages", "VC(s)")
	for _, h := range hot {
		if _, err := fmt.Fprintf(w, "%-6d %-16s %-16s %12d %10d %12.4g\n",
			h.Link, coordString(topo, h.From), coordString(topo, h.To),
			h.Volume, h.Messages, h.VC); err != nil {
			return err
		}
	}
	return nil
}

func coordString(t *torus.Torus, node int) string {
	if node < 0 {
		return "?"
	}
	c := t.Coord(node, nil)
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// SliceMap renders the z-slice of a 3D torus as a character grid:
// '.' free node, 'o' allocated but empty, letters/'#' for nodes
// hosting supertasks (the letter scales with the node's share of the
// slice's hosted communication volume: a..z light to heavy). It
// shows, at a glance, how compact an allocation is and where the
// mapping put the heavy supertasks.
func SliceMap(w io.Writer, topo *torus.Torus, a *alloc.Allocation, coarse *graph.Graph, nodeOf []int32, z int) error {
	dims := topo.Dims()
	if len(dims) != 3 {
		return fmt.Errorf("viz: SliceMap needs a 3D torus, have %dD", len(dims))
	}
	if z < 0 || z >= dims[2] {
		return fmt.Errorf("viz: slice z=%d out of [0,%d)", z, dims[2])
	}
	allocated := map[int32]bool{}
	for _, m := range a.Nodes {
		allocated[m] = true
	}
	// Volume hosted per node.
	hostVol := map[int32]int64{}
	var maxVol int64
	for v := 0; v < coarse.N(); v++ {
		var vol int64
		for _, wt := range coarse.Weights(v) {
			vol += wt
		}
		hostVol[nodeOf[v]] = vol
		if vol > maxVol {
			maxVol = vol
		}
	}
	fmt.Fprintf(w, "z=%d slice (%dx%d): '.' free  'o' allocated  a..z hosting (by volume)\n", z, dims[0], dims[1])
	for y := dims[1] - 1; y >= 0; y-- {
		var sb strings.Builder
		for x := 0; x < dims[0]; x++ {
			node := int32(topo.NodeAt([]int{x, y, z}))
			ch := byte('.')
			if allocated[node] {
				ch = 'o'
			}
			if vol, ok := hostVol[node]; ok {
				if maxVol == 0 {
					ch = 'a'
				} else {
					ch = byte('a' + int(25*vol/maxVol))
				}
			}
			sb.WriteByte(ch)
			sb.WriteByte(' ')
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

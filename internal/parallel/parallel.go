// Package parallel provides the small deterministic worker-pool
// helpers the experiment harness uses to exploit multicore hosts:
// results are always collected by index, so a parallel run produces
// byte-identical output to a serial one.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default worker count (GOMAXPROCS).
func Workers() int { return runtime.GOMAXPROCS(0) }

// ForEach invokes fn(i) for every i in [0,n) on up to workers
// goroutines (workers <= 0 means Workers()). It waits for all
// invocations to finish and returns the error with the lowest index,
// if any — so the reported error is the same one a serial loop would
// have hit first. fn must be safe for concurrent invocation.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map applies fn to every index in [0,n) in parallel and returns the
// results in index order. The first error (by index) aborts the
// result; all invocations still run to completion.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Group is the bounded fork-join pool behind one solve's intra-request
// parallelism. It owns workers-1 spare worker tokens (the calling
// goroutine is the first worker): Fork runs its second closure on a
// fresh goroutine when a token is free and inline otherwise, so a
// recursive pipeline — bisection subtrees, independent greedy runs,
// candidate scoring — never runs more than `workers` goroutines at
// once, regardless of recursion depth or fan-out.
//
// Determinism contract: a Group never decides *what* runs, only
// *where*. As long as forked closures touch disjoint state (or
// pre-assigned result slots) and draw randomness from their own
// seeded sources, the result is byte-identical for every worker count
// including 1. All the solve-pipeline callers are built that way.
//
// The Group also carries the request context for cooperative,
// in-solve cancellation: hot loops poll Cancelled at safe points
// (between refinement swaps, between bisection subtrees) and bail
// early, leaving state consistent; the pipeline then surfaces
// ctx.Err. A nil *Group is valid everywhere and means "serial, never
// cancelled".
type Group struct {
	tokens chan struct{}
	done   <-chan struct{}
	ctx    context.Context
}

// NewGroup returns a Group running at most workers goroutines
// (workers <= 0 means Workers()) under ctx. ctx may be nil for "no
// cancellation".
func NewGroup(ctx context.Context, workers int) *Group {
	if workers <= 0 {
		workers = Workers()
	}
	g := &Group{ctx: ctx}
	if ctx != nil {
		g.done = ctx.Done()
	}
	if workers > 1 {
		g.tokens = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			g.tokens <- struct{}{}
		}
	}
	return g
}

// NumWorkers reports the group's worker bound (1 for nil or serial
// groups).
func (g *Group) NumWorkers() int {
	if g == nil || g.tokens == nil {
		return 1
	}
	return cap(g.tokens) + 1
}

// Cancelled reports whether the group's context is done. It is cheap
// enough for refinement inner loops.
func (g *Group) Cancelled() bool {
	if g == nil || g.done == nil {
		return false
	}
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// Err returns the context error once the group is cancelled, nil
// otherwise.
func (g *Group) Err() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}

// Fork runs a and b to completion, b on a pooled goroutine when a
// worker token is free and inline otherwise. Both closures observe
// every write made before Fork, and every write they make is visible
// after Fork returns. They must touch disjoint state.
func (g *Group) Fork(a, b func()) {
	if g == nil || g.tokens == nil {
		a()
		b()
		return
	}
	select {
	case <-g.tokens:
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { g.tokens <- struct{}{} }()
			b()
		}()
		a()
		wg.Wait()
	default:
		a()
		b()
	}
}

// ForEachIdx invokes fn(i) for every i in [0,n), spreading the calls
// over the group's free workers and waiting for all of them. Callers
// keep determinism by writing results into slot i only.
func (g *Group) ForEachIdx(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if g == nil || g.tokens == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// A shared atomic cursor hands out indices: helpers and the
	// caller all drain it, nobody races a hand-off, and — unlike a
	// buffered index channel — nothing n-sized is allocated in loops
	// the arena work elsewhere exists to de-allocate.
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case <-g.tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { g.tokens <- struct{}{} }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
}

package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestGroupForkRunsBoth: both closures run exactly once at every
// worker count, including the nil group.
func TestGroupForkRunsBoth(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := NewGroup(context.Background(), workers)
		var a, b atomic.Int64
		g.Fork(func() { a.Add(1) }, func() { b.Add(1) })
		if a.Load() != 1 || b.Load() != 1 {
			t.Fatalf("workers=%d: ran a=%d b=%d", workers, a.Load(), b.Load())
		}
		if got := g.NumWorkers(); got != workers {
			t.Fatalf("NumWorkers = %d, want %d", got, workers)
		}
	}
	var nilG *Group
	ran := 0
	nilG.Fork(func() { ran++ }, func() { ran++ })
	if ran != 2 {
		t.Fatalf("nil group ran %d closures", ran)
	}
	if nilG.NumWorkers() != 1 || nilG.Cancelled() || nilG.Err() != nil {
		t.Fatal("nil group must be serial and never cancelled")
	}
}

// TestGroupBounded: deep recursive forking never exceeds the worker
// bound.
func TestGroupBounded(t *testing.T) {
	const workers = 4
	g := NewGroup(context.Background(), workers)
	var active, peak atomic.Int64
	var recurse func(depth int)
	recurse = func(depth int) {
		if depth == 0 {
			// Leaf work: at most one leaf runs per goroutine at a
			// time, so the peak counts live goroutines.
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			for i := 0; i < 1000; i++ {
				_ = i * i
			}
			active.Add(-1)
			return
		}
		g.Fork(func() { recurse(depth - 1) }, func() { recurse(depth - 1) })
	}
	recurse(8)
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestGroupDeterministicSlots: ForEachIdx fills result slots
// identically at every worker count.
func TestGroupDeterministicSlots(t *testing.T) {
	const n = 200
	want := make([]int, n)
	NewGroup(context.Background(), 1).ForEachIdx(n, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 8} {
		got := make([]int, n)
		NewGroup(context.Background(), workers).ForEachIdx(n, func(i int) { got[i] = i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestGroupCancellation: Cancelled flips once the context dies, and
// Err surfaces the cause.
func TestGroupCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 2)
	if g.Cancelled() {
		t.Fatal("fresh group already cancelled")
	}
	cancel()
	if !g.Cancelled() {
		t.Fatal("group not cancelled after ctx cancel")
	}
	if g.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", g.Err())
	}
	// A group with no context never cancels.
	if NewGroup(nil, 2).Cancelled() {
		t.Fatal("nil-ctx group reports cancelled")
	}
}

// TestGroupForkReusesTokens: sequential forks must not leak tokens.
func TestGroupForkReusesTokens(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		g.Fork(func() { ran.Add(1) }, func() { ran.Add(1) })
	}
	if ran.Load() != 200 {
		t.Fatalf("ran %d closures, want 200", ran.Load())
	}
	if len(g.tokens) != cap(g.tokens) {
		t.Fatalf("leaked tokens: %d of %d free", len(g.tokens), cap(g.tokens))
	}
}

package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		hits := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
	if err := ForEach(-5, 4, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n<0: err=%v called=%v", err, called)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 8} {
		err := ForEach(50, workers, func(i int) error {
			switch i {
			case 7:
				return errA
			case 31:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want the index-7 error", workers, err)
		}
	}
}

func TestForEachSerialErrorShortCircuits(t *testing.T) {
	// With one worker the loop stops at the first error, as a serial
	// loop would.
	var calls int
	err := ForEach(100, 1, func(i int) error {
		calls++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(64, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	want := errors.New("boom")
	out, err := Map(16, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) || out != nil {
		t.Fatalf("err=%v out=%v", err, out)
	}
}

func TestMapDeterministicProperty(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		out, err := Map(int(n), int(workers%16), func(i int) (int, error) { return 3 * i, nil })
		if err != nil || len(out) != int(n) {
			return false
		}
		for i, v := range out {
			if v != 3*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

package graph

import "repro/internal/ds"

// BFS runs a breadth-first search from the given seed set (all seeds
// at level 0) and invokes visit for every reached vertex with its
// level, in BFS order. Returning false from visit aborts the
// traversal early — the mapping algorithms use this for their
// early-exit mechanisms. Seeds themselves are visited first.
func BFS(g *Graph, seeds []int32, visit func(v int32, level int) bool) {
	level := make([]int32, g.N())
	for i := range level {
		level[i] = -1
	}
	q := ds.NewQueue(len(seeds) + 16)
	for _, s := range seeds {
		if level[s] >= 0 {
			continue
		}
		level[s] = 0
		q.Push(int(s))
	}
	for q.Len() > 0 {
		v := q.Pop()
		if !visit(int32(v), int(level[v])) {
			return
		}
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				q.Push(int(u))
			}
		}
	}
}

// BFSLevels returns the BFS level of every vertex from the seed set,
// with -1 for unreachable vertices.
func BFSLevels(g *Graph, seeds []int32) []int32 {
	levels := make([]int32, g.N())
	for i := range levels {
		levels[i] = -1
	}
	q := ds.NewQueue(len(seeds) + 16)
	for _, s := range seeds {
		if levels[s] >= 0 {
			continue
		}
		levels[s] = 0
		q.Push(int(s))
	}
	for q.Len() > 0 {
		v := q.Pop()
		for _, u := range g.Neighbors(v) {
			if levels[u] < 0 {
				levels[u] = levels[v] + 1
				q.Push(int(u))
			}
		}
	}
	return levels
}

// FarthestVertex returns a vertex at the maximum BFS distance from the
// seed set, restricted to vertices where eligible returns true (pass
// nil for no restriction). Ties are broken in favour of the vertex
// with the larger tieWeight (pass nil for id order: the smallest id
// wins). found is false when no eligible vertex is reachable.
//
// This is the "farthest unmapped task" selection of Algorithm 1, with
// the paper's tie-break "in the favor of the task with a higher
// communication volume".
func FarthestVertex(g *Graph, seeds []int32, eligible func(v int32) bool, tieWeight []int64) (best int32, level int, found bool) {
	bestLevel := -1
	best = -1
	BFS(g, seeds, func(v int32, lv int) bool {
		if eligible != nil && !eligible(v) {
			return true
		}
		switch {
		case lv > bestLevel:
			bestLevel, best = lv, v
		case lv == bestLevel && best >= 0 && tieWeight != nil && tieWeight[v] > tieWeight[best]:
			best = v
		}
		return true
	})
	if best < 0 {
		return -1, -1, false
	}
	return best, bestLevel, true
}

// Components labels the connected components of g (treating edges as
// undirected only if g is symmetric; directed graphs get weakly-
// reachable components only along stored edges). It returns the
// component id per vertex and the number of components.
func Components(g *Graph) ([]int32, int) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	q := ds.NewQueue(64)
	c := int32(0)
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = c
		q.Push(s)
		for q.Len() > 0 {
			v := q.Pop()
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = c
					q.Push(int(u))
				}
			}
		}
		c++
	}
	return comp, int(c)
}

// PseudoPeripheralVertex returns a vertex approximately maximizing
// eccentricity inside the component of start, via two BFS sweeps.
func PseudoPeripheralVertex(g *Graph, start int32) int32 {
	far, _, ok := FarthestVertex(g, []int32{start}, nil, nil)
	if !ok {
		return start
	}
	far2, _, ok := FarthestVertex(g, []int32{far}, nil, nil)
	if !ok {
		return far
	}
	return far2
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	// Triangle 0-1-2 with weights.
	us := []int32{0, 1, 1, 2, 0, 2}
	vs := []int32{1, 0, 2, 1, 2, 0}
	ws := []int64{5, 5, 7, 7, 9, 9}
	g := FromEdges(3, us, vs, ws, nil)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 6 {
		t.Fatalf("N=%d M=%d, want 3,6", g.N(), g.M())
	}
	if !g.IsSymmetric() {
		t.Fatal("triangle should be symmetric")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 0) {
		t.Fatal("edge queries wrong")
	}
	if got := g.TotalEdgeWeight(); got != 42 {
		t.Fatalf("TotalEdgeWeight = %d, want 42", got)
	}
}

func TestFromEdgesMergesParallelAndDropsLoops(t *testing.T) {
	us := []int32{0, 0, 0, 1}
	vs := []int32{1, 1, 0, 1} // two parallel (0,1), a loop (0,0), a loop (1,1)
	ws := []int64{3, 4, 100, 100}
	g := FromEdges(2, us, vs, ws, nil)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (merged, loops dropped)", g.M())
	}
	if g.EW[0] != 7 {
		t.Fatalf("merged weight = %d, want 7", g.EW[0])
	}
}

func TestSymmetrize(t *testing.T) {
	// Directed: 0->1 (w 3), 1->0 (w 4), 2->0 (w 5).
	us := []int32{0, 1, 2}
	vs := []int32{1, 0, 0}
	ws := []int64{3, 4, 5}
	g := FromEdges(3, us, vs, ws, nil)
	s := g.Symmetrize()
	if !s.IsSymmetric() {
		t.Fatal("Symmetrize output not symmetric")
	}
	// (0,1) should have weight 3+4=7 in both directions.
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 7}, {1, 0, 7}, {0, 2, 5}, {2, 0, 5}} {
		found := false
		for i := s.Xadj[e.u]; i < s.Xadj[e.u+1]; i++ {
			if int(s.Adj[i]) == e.v {
				found = true
				if s.EW[i] != e.w {
					t.Fatalf("weight(%d,%d) = %d, want %d", e.u, e.v, s.EW[i], e.w)
				}
			}
		}
		if !found {
			t.Fatalf("edge (%d,%d) missing after Symmetrize", e.u, e.v)
		}
	}
}

func TestSymmetrizeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := RandomConnected(30, 60, 9, seed)
		s := g.Symmetrize()
		return s.Validate() == nil && s.IsSymmetric() &&
			s.TotalEdgeWeight() == 2*g.TotalEdgeWeight()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	// 2*rows*cols - rows - cols undirected edges, stored twice.
	wantM := 2 * (2*3*4 - 3 - 4)
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	// Corner 0 has degree 2; interior (1,1)=5 has degree 4.
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatalf("degrees: corner=%d interior=%d, want 2,4", g.Degree(0), g.Degree(5))
	}
	if !g.IsSymmetric() {
		t.Fatal("grid not symmetric")
	}
}

func TestBFSLevelsOnRing(t *testing.T) {
	g := Ring(8)
	lv := BFSLevels(g, []int32{0})
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}

func TestBFSMultiSeed(t *testing.T) {
	g := Ring(8)
	lv := BFSLevels(g, []int32{0, 4})
	want := []int32{0, 1, 2, 1, 0, 1, 2, 1}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}

func TestBFSEarlyExit(t *testing.T) {
	g := Grid2D(10, 10)
	visited := 0
	BFS(g, []int32{0}, func(v int32, level int) bool {
		visited++
		return level < 2 // stop once we see a level-2 vertex
	})
	if visited > 7 { // 1 + 2 + 3 +1(the aborting one) is the max
		t.Fatalf("early exit visited %d vertices", visited)
	}
	if visited == 0 {
		t.Fatal("BFS visited nothing")
	}
}

func TestFarthestVertex(t *testing.T) {
	g := Ring(10)
	v, level, ok := FarthestVertex(g, []int32{0}, nil, nil)
	if !ok || v != 5 || level != 5 {
		t.Fatalf("FarthestVertex = (%d,%d,%v), want (5,5,true)", v, level, ok)
	}
	// Tie-break: from seed 0 on a 4-cycle both 1 and 3 are at level 1,
	// 2 at level 2; restrict to {1,3} and give 3 the higher weight.
	g4 := Ring(4)
	weights := []int64{0, 1, 0, 9}
	v, _, ok = FarthestVertex(g4, []int32{0}, func(v int32) bool { return v == 1 || v == 3 }, weights)
	if !ok || v != 3 {
		t.Fatalf("tie-break FarthestVertex = %d, want 3", v)
	}
}

func TestFarthestVertexNoEligible(t *testing.T) {
	g := Ring(4)
	_, _, ok := FarthestVertex(g, []int32{0}, func(v int32) bool { return false }, nil)
	if ok {
		t.Fatal("expected found=false with no eligible vertices")
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint triangles.
	us := []int32{0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 3}
	vs := []int32{1, 0, 2, 1, 0, 2, 4, 3, 5, 4, 3, 5}
	g := FromEdges(6, us, vs, nil, nil)
	comp, nc := Components(g)
	if nc != 2 {
		t.Fatalf("components = %d, want 2", nc)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] {
		t.Fatal("first triangle split across components")
	}
	if comp[3] != comp[4] || comp[3] != comp[5] {
		t.Fatal("second triangle split across components")
	}
	if comp[0] == comp[3] {
		t.Fatal("triangles merged")
	}
}

func TestComponentsSingletons(t *testing.T) {
	g := FromEdges(5, nil, nil, nil, nil)
	_, nc := Components(g)
	if nc != 5 {
		t.Fatalf("components = %d, want 5", nc)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid2D(3, 3)
	// Take the first row: vertices 0,1,2 form a path.
	sub, remap := g.InducedSubgraph([]int32{0, 1, 2})
	if sub.N() != 3 || sub.M() != 4 {
		t.Fatalf("sub N=%d M=%d, want 3,4", sub.N(), sub.M())
	}
	if remap[0] != 0 || remap[1] != 1 || remap[2] != 2 || remap[3] != -1 {
		t.Fatalf("remap wrong: %v", remap[:4])
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("subgraph edges wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := RandomConnected(10, 10, 5, 1)
	g.VW = make([]int64, g.N())
	c := g.Clone()
	c.EW[0] = 999
	c.VW[0] = 999
	c.Adj[0] = 0
	if g.EW[0] == 999 || g.VW[0] == 999 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestPseudoPeripheralVertex(t *testing.T) {
	// On a path graph the pseudo-peripheral vertex from the middle is
	// an endpoint.
	var us, vs []int32
	n := 9
	for i := 0; i < n-1; i++ {
		us = append(us, int32(i), int32(i+1))
		vs = append(vs, int32(i+1), int32(i))
	}
	g := FromEdges(n, us, vs, nil, nil)
	p := PseudoPeripheralVertex(g, 4)
	if p != 0 && p != int32(n-1) {
		t.Fatalf("pseudo-peripheral = %d, want an endpoint", p)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Grid2D(2, 2)
	bad := g.Clone()
	bad.Adj[0] = 99
	if bad.Validate() == nil {
		t.Fatal("Validate missed out-of-range Adj")
	}
	bad2 := g.Clone()
	bad2.Xadj[1] = 100
	if bad2.Validate() == nil {
		t.Fatal("Validate missed bad Xadj")
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomConnected(50, 20, 3, seed)
		if _, nc := Components(g); nc != 1 {
			t.Fatalf("seed %d: graph not connected (%d comps)", seed, nc)
		}
		if !g.IsSymmetric() {
			t.Fatalf("seed %d: not symmetric", seed)
		}
	}
}

func TestStar(t *testing.T) {
	g := Star([]int64{2, 4, 6})
	if g.N() != 4 || g.Degree(0) != 3 {
		t.Fatalf("star shape wrong: N=%d deg(0)=%d", g.N(), g.Degree(0))
	}
	var hubSum int64
	for _, w := range g.Weights(0) {
		hubSum += w
	}
	if hubSum != 12 {
		t.Fatalf("hub weight sum = %d, want 12", hubSum)
	}
}

func TestVertexWeightDefaults(t *testing.T) {
	g := Ring(4)
	if g.VertexWeight(0) != 1 {
		t.Fatal("nil VW should default to 1")
	}
	if g.TotalVertexWeight() != 4 {
		t.Fatalf("TotalVertexWeight = %d, want 4", g.TotalVertexWeight())
	}
	g.VW = []int64{2, 3, 4, 5}
	if g.VertexWeight(2) != 4 || g.TotalVertexWeight() != 14 {
		t.Fatal("explicit VW not honoured")
	}
}

func TestEdgeWeightDefaults(t *testing.T) {
	g := &Graph{Xadj: []int32{0, 1, 2}, Adj: []int32{1, 0}}
	if g.EdgeWeight(0) != 1 {
		t.Fatal("nil EW should default to 1")
	}
	if g.TotalEdgeWeight() != 2 {
		t.Fatalf("TotalEdgeWeight = %d, want 2", g.TotalEdgeWeight())
	}
}

func TestValidateMoreCorruption(t *testing.T) {
	cases := []*Graph{
		{Xadj: nil}, // empty
		{Xadj: []int32{1, 2}, Adj: []int32{0, 0}},                 // Xadj[0] != 0
		{Xadj: []int32{0, 2}, Adj: []int32{0}},                    // Xadj[n] mismatch
		{Xadj: []int32{0, 1}, Adj: []int32{0}, EW: []int64{}},     // EW length
		{Xadj: []int32{0, 1}, Adj: []int32{0}, VW: []int64{1, 2}}, // VW length
	}
	for i, g := range cases {
		if g.Validate() == nil {
			t.Fatalf("case %d: Validate accepted corrupt graph", i)
		}
	}
}

func TestIsSymmetricDetectsAsymmetry(t *testing.T) {
	g := FromEdges(3, []int32{0}, []int32{1}, []int64{5}, nil)
	if g.IsSymmetric() {
		t.Fatal("directed edge should not be symmetric")
	}
	// Same structure but different weights per direction.
	g2 := FromEdges(2, []int32{0, 1}, []int32{1, 0}, []int64{5, 7}, nil)
	if g2.IsSymmetric() {
		t.Fatal("weight-asymmetric graph should not be symmetric")
	}
}

func TestSymmetrizePreservesVertexWeights(t *testing.T) {
	g := FromEdges(3, []int32{0}, []int32{1}, []int64{5}, []int64{10, 20, 30})
	s := g.Symmetrize()
	for i, want := range []int64{10, 20, 30} {
		if s.VertexWeight(i) != want {
			t.Fatalf("VW[%d] = %d, want %d", i, s.VertexWeight(i), want)
		}
	}
}

func TestPseudoPeripheralOnSingleton(t *testing.T) {
	g := FromEdges(1, nil, nil, nil, nil)
	if p := PseudoPeripheralVertex(g, 0); p != 0 {
		t.Fatalf("singleton pseudo-peripheral = %d", p)
	}
}

// Package graph provides the compressed sparse row (CSR) graph type
// shared by the partitioners, the task-graph builder and the mapping
// algorithms, together with the traversals they rely on.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a weighted graph in CSR form. Vertices are 0..N()-1; the
// neighbours of v are Adj[Xadj[v]:Xadj[v+1]] with matching edge weights
// in EW. VW holds vertex weights (computation loads).
//
// A Graph may represent a directed or an undirected (symmetric) graph;
// the partitioning and mapping algorithms require symmetric inputs and
// the builders below provide symmetrization.
type Graph struct {
	Xadj []int32 // length N()+1
	Adj  []int32 // length M() (directed edge count)
	EW   []int64 // edge weights, same length as Adj (nil means unit)
	VW   []int64 // vertex weights, length N() (nil means unit)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Xadj) - 1 }

// M returns the number of stored (directed) edges.
func (g *Graph) M() int { return len(g.Adj) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency slice of v; the caller must not
// mutate it.
func (g *Graph) Neighbors(v int) []int32 { return g.Adj[g.Xadj[v]:g.Xadj[v+1]] }

// Weights returns the edge-weight slice aligned with Neighbors(v).
func (g *Graph) Weights(v int) []int64 { return g.EW[g.Xadj[v]:g.Xadj[v+1]] }

// VertexWeight returns VW[v], defaulting to 1 when VW is nil.
func (g *Graph) VertexWeight(v int) int64 {
	if g.VW == nil {
		return 1
	}
	return g.VW[v]
}

// EdgeWeight returns the weight of the i-th stored edge, defaulting to
// 1 when EW is nil.
func (g *Graph) EdgeWeight(i int) int64 {
	if g.EW == nil {
		return 1
	}
	return g.EW[i]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	if g.VW == nil {
		return int64(g.N())
	}
	var s int64
	for _, w := range g.VW {
		s += w
	}
	return s
}

// Validate checks structural invariants and returns a descriptive
// error when one fails. It is used by tests and the file loaders.
func (g *Graph) Validate() error {
	if len(g.Xadj) == 0 {
		return fmt.Errorf("graph: empty Xadj")
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0] = %d, want 0", g.Xadj[0])
	}
	n := g.N()
	for v := 0; v < n; v++ {
		if g.Xadj[v+1] < g.Xadj[v] {
			return fmt.Errorf("graph: Xadj not monotone at %d", v)
		}
	}
	if int(g.Xadj[n]) != len(g.Adj) {
		return fmt.Errorf("graph: Xadj[n]=%d, len(Adj)=%d", g.Xadj[n], len(g.Adj))
	}
	if g.EW != nil && len(g.EW) != len(g.Adj) {
		return fmt.Errorf("graph: len(EW)=%d, len(Adj)=%d", len(g.EW), len(g.Adj))
	}
	if g.VW != nil && len(g.VW) != n {
		return fmt.Errorf("graph: len(VW)=%d, n=%d", len(g.VW), n)
	}
	for i, u := range g.Adj {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("graph: Adj[%d]=%d out of range [0,%d)", i, u, n)
		}
	}
	return nil
}

// IsSymmetric reports whether for every edge (u,v,w) the edge (v,u,w)
// is also present.
func (g *Graph) IsSymmetric() bool {
	type key struct{ u, v int32 }
	seen := make(map[key]int64, g.M())
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			seen[key{int32(u), g.Adj[i]}] += g.EdgeWeight(int(i))
		}
	}
	for k, w := range seen {
		if seen[key{k.v, k.u}] != w {
			return false
		}
	}
	return true
}

// HasEdge reports whether the directed edge (u,v) is stored, using a
// linear scan of u's adjacency.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// edgeTriple is a scratch type for the builders.
type edgeTriple struct {
	u, v int32
	w    int64
}

// FromEdges builds a CSR graph with n vertices from a directed edge
// list. Parallel edges are merged by summing weights; self loops are
// dropped. vw may be nil for unit vertex weights.
func FromEdges(n int, us, vs []int32, ws []int64, vw []int64) *Graph {
	if len(us) != len(vs) || (ws != nil && len(ws) != len(us)) {
		panic("graph: FromEdges length mismatch")
	}
	triples := make([]edgeTriple, 0, len(us))
	for i := range us {
		if us[i] == vs[i] {
			continue
		}
		w := int64(1)
		if ws != nil {
			w = ws[i]
		}
		triples = append(triples, edgeTriple{us[i], vs[i], w})
	}
	return fromTriples(n, triples, vw)
}

func fromTriples(n int, triples []edgeTriple, vw []int64) *Graph {
	sort.Slice(triples, func(i, j int) bool {
		if triples[i].u != triples[j].u {
			return triples[i].u < triples[j].u
		}
		return triples[i].v < triples[j].v
	})
	// Merge duplicates.
	out := triples[:0]
	for _, t := range triples {
		if len(out) > 0 && out[len(out)-1].u == t.u && out[len(out)-1].v == t.v {
			out[len(out)-1].w += t.w
			continue
		}
		out = append(out, t)
	}
	g := &Graph{
		Xadj: make([]int32, n+1),
		Adj:  make([]int32, len(out)),
		EW:   make([]int64, len(out)),
		VW:   vw,
	}
	for _, t := range out {
		g.Xadj[t.u+1]++
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] += g.Xadj[v]
	}
	for i, t := range out {
		g.Adj[i] = t.v
		g.EW[i] = t.w
	}
	return g
}

// Symmetrize returns the undirected version of g: for every directed
// edge (u,v,w) the result has both (u,v) and (v,u) with weight equal to
// w(u,v)+w(v,u). Vertex weights are preserved. Self loops are dropped.
// This implements the symmetric-cost view c(t1,t2) the paper's mapping
// algorithms assume (WH is an undirected metric).
func (g *Graph) Symmetrize() *Graph {
	triples := make([]edgeTriple, 0, 2*g.M())
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			if int32(u) == v {
				continue
			}
			w := g.EdgeWeight(int(i))
			triples = append(triples, edgeTriple{int32(u), v, w}, edgeTriple{v, int32(u), w})
		}
	}
	var vw []int64
	if g.VW != nil {
		vw = append([]int64(nil), g.VW...)
	}
	return fromTriples(g.N(), triples, vw)
}

// InducedSubgraph returns the subgraph on the given vertices (in the
// given order) plus the mapping from old ids to new ids (-1 when
// excluded). Edges with an excluded endpoint are dropped.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32) {
	remap := make([]int32, g.N())
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vertices {
		remap[v] = int32(i)
	}
	var triples []edgeTriple
	for _, v := range vertices {
		nv := remap[v]
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := remap[g.Adj[i]]
			if u >= 0 {
				triples = append(triples, edgeTriple{nv, u, g.EdgeWeight(int(i))})
			}
		}
	}
	var vw []int64
	if g.VW != nil {
		vw = make([]int64, len(vertices))
		for i, v := range vertices {
			vw[i] = g.VW[v]
		}
	}
	return fromTriples(len(vertices), triples, vw), remap
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Xadj: append([]int32(nil), g.Xadj...),
		Adj:  append([]int32(nil), g.Adj...),
	}
	if g.EW != nil {
		c.EW = append([]int64(nil), g.EW...)
	}
	if g.VW != nil {
		c.VW = append([]int64(nil), g.VW...)
	}
	return c
}

// TotalEdgeWeight returns the sum of stored edge weights (each
// undirected edge counted twice in a symmetric graph).
func (g *Graph) TotalEdgeWeight() int64 {
	if g.EW == nil {
		return int64(g.M())
	}
	var s int64
	for _, w := range g.EW {
		s += w
	}
	return s
}

// Package graph provides the compressed sparse row (CSR) graph type
// shared by the partitioners, the task-graph builder and the mapping
// algorithms, together with the traversals they rely on.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/ds"
)

// Graph is a weighted graph in CSR form. Vertices are 0..N()-1; the
// neighbours of v are Adj[Xadj[v]:Xadj[v+1]] with matching edge weights
// in EW. VW holds vertex weights (computation loads).
//
// A Graph may represent a directed or an undirected (symmetric) graph;
// the partitioning and mapping algorithms require symmetric inputs and
// the builders below provide symmetrization.
type Graph struct {
	Xadj []int32 // length N()+1
	Adj  []int32 // length M() (directed edge count)
	EW   []int64 // edge weights, same length as Adj (nil means unit)
	VW   []int64 // vertex weights, length N() (nil means unit)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Xadj) - 1 }

// M returns the number of stored (directed) edges.
func (g *Graph) M() int { return len(g.Adj) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency slice of v; the caller must not
// mutate it.
func (g *Graph) Neighbors(v int) []int32 { return g.Adj[g.Xadj[v]:g.Xadj[v+1]] }

// Weights returns the edge-weight slice aligned with Neighbors(v).
func (g *Graph) Weights(v int) []int64 { return g.EW[g.Xadj[v]:g.Xadj[v+1]] }

// VertexWeight returns VW[v], defaulting to 1 when VW is nil.
func (g *Graph) VertexWeight(v int) int64 {
	if g.VW == nil {
		return 1
	}
	return g.VW[v]
}

// EdgeWeight returns the weight of the i-th stored edge, defaulting to
// 1 when EW is nil.
func (g *Graph) EdgeWeight(i int) int64 {
	if g.EW == nil {
		return 1
	}
	return g.EW[i]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	if g.VW == nil {
		return int64(g.N())
	}
	var s int64
	for _, w := range g.VW {
		s += w
	}
	return s
}

// Validate checks structural invariants and returns a descriptive
// error when one fails. It is used by tests and the file loaders.
func (g *Graph) Validate() error {
	if len(g.Xadj) == 0 {
		return fmt.Errorf("graph: empty Xadj")
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0] = %d, want 0", g.Xadj[0])
	}
	n := g.N()
	for v := 0; v < n; v++ {
		if g.Xadj[v+1] < g.Xadj[v] {
			return fmt.Errorf("graph: Xadj not monotone at %d", v)
		}
	}
	if int(g.Xadj[n]) != len(g.Adj) {
		return fmt.Errorf("graph: Xadj[n]=%d, len(Adj)=%d", g.Xadj[n], len(g.Adj))
	}
	if g.EW != nil && len(g.EW) != len(g.Adj) {
		return fmt.Errorf("graph: len(EW)=%d, len(Adj)=%d", len(g.EW), len(g.Adj))
	}
	if g.VW != nil && len(g.VW) != n {
		return fmt.Errorf("graph: len(VW)=%d, n=%d", len(g.VW), n)
	}
	for i, u := range g.Adj {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("graph: Adj[%d]=%d out of range [0,%d)", i, u, n)
		}
	}
	return nil
}

// IsSymmetric reports whether for every edge (u,v,w) the edge (v,u,w)
// is also present.
func (g *Graph) IsSymmetric() bool {
	type key struct{ u, v int32 }
	seen := make(map[key]int64, g.M())
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			seen[key{int32(u), g.Adj[i]}] += g.EdgeWeight(int(i))
		}
	}
	for k, w := range seen {
		if seen[key{k.v, k.u}] != w {
			return false
		}
	}
	return true
}

// HasEdge reports whether the directed edge (u,v) is stored, using a
// linear scan of u's adjacency.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// FromEdges builds a CSR graph with n vertices from a directed edge
// list. Parallel edges are merged by summing weights; self loops are
// dropped. vw may be nil for unit vertex weights.
func FromEdges(n int, us, vs []int32, ws []int64, vw []int64) *Graph {
	return FromEdgesArena(nil, n, us, vs, ws, vw)
}

// FromEdgesArena is FromEdges with the edge-staging buffer borrowed
// from an arena — the final CSR arrays escape into the result and
// remain freshly allocated, but the sort-and-merge scratch (the
// dominant transient of graph construction) is recycled. A nil arena
// allocates fresh, so the two paths build identical graphs.
func FromEdgesArena(a *arena.Arena, n int, us, vs []int32, ws []int64, vw []int64) *Graph {
	if len(us) != len(vs) || (ws != nil && len(ws) != len(us)) {
		panic("graph: FromEdges length mismatch")
	}
	triples := a.Edges(len(us))
	cnt := 0
	for i := range us {
		if us[i] == vs[i] {
			continue
		}
		w := int64(1)
		if ws != nil {
			w = ws[i]
		}
		triples[cnt] = ds.EdgeTriple{U: us[i], V: vs[i], W: w}
		cnt++
	}
	g := FromTriples(n, triples[:cnt], vw)
	a.PutEdges(triples)
	return g
}

// FromTriples builds a CSR graph with n vertices from staged edge
// triples, merging parallel edges by summing weights. Self loops must
// already be filtered out. triples is scratch: it is reordered in
// place and never retained, so callers may pool it. vw is retained.
func FromTriples(n int, triples []ds.EdgeTriple, vw []int64) *Graph {
	sort.Slice(triples, func(i, j int) bool {
		if triples[i].U != triples[j].U {
			return triples[i].U < triples[j].U
		}
		return triples[i].V < triples[j].V
	})
	// Merge duplicates.
	out := triples[:0]
	for _, t := range triples {
		if len(out) > 0 && out[len(out)-1].U == t.U && out[len(out)-1].V == t.V {
			out[len(out)-1].W += t.W
			continue
		}
		out = append(out, t)
	}
	g := &Graph{
		Xadj: make([]int32, n+1),
		Adj:  make([]int32, len(out)),
		EW:   make([]int64, len(out)),
		VW:   vw,
	}
	for _, t := range out {
		g.Xadj[t.U+1]++
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] += g.Xadj[v]
	}
	for i, t := range out {
		g.Adj[i] = t.V
		g.EW[i] = t.W
	}
	return g
}

// Symmetrize returns the undirected version of g: for every directed
// edge (u,v,w) the result has both (u,v) and (v,u) with weight equal to
// w(u,v)+w(v,u). Vertex weights are preserved. Self loops are dropped.
// This implements the symmetric-cost view c(t1,t2) the paper's mapping
// algorithms assume (WH is an undirected metric).
func (g *Graph) Symmetrize() *Graph { return g.SymmetrizeArena(nil) }

// SymmetrizeArena is Symmetrize with pooled staging scratch (see
// FromEdgesArena).
func (g *Graph) SymmetrizeArena(a *arena.Arena) *Graph {
	triples := a.Edges(2 * g.M())
	cnt := 0
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			if int32(u) == v {
				continue
			}
			w := g.EdgeWeight(int(i))
			triples[cnt] = ds.EdgeTriple{U: int32(u), V: v, W: w}
			triples[cnt+1] = ds.EdgeTriple{U: v, V: int32(u), W: w}
			cnt += 2
		}
	}
	var vw []int64
	if g.VW != nil {
		vw = append([]int64(nil), g.VW...)
	}
	res := FromTriples(g.N(), triples[:cnt], vw)
	a.PutEdges(triples)
	return res
}

// InducedSubgraph returns the subgraph on the given vertices (in the
// given order) plus the mapping from old ids to new ids (-1 when
// excluded). Edges with an excluded endpoint are dropped.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32) {
	return g.InducedSubgraphArena(nil, vertices)
}

// InducedSubgraphArena is InducedSubgraph with pooled staging scratch
// (see FromEdgesArena). The returned remap escapes and stays fresh.
func (g *Graph) InducedSubgraphArena(a *arena.Arena, vertices []int32) (*Graph, []int32) {
	remap := make([]int32, g.N())
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vertices {
		remap[v] = int32(i)
	}
	bound := 0
	for _, v := range vertices {
		bound += g.Degree(int(v))
	}
	triples := a.Edges(bound)
	cnt := 0
	for _, v := range vertices {
		nv := remap[v]
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := remap[g.Adj[i]]
			if u >= 0 {
				triples[cnt] = ds.EdgeTriple{U: nv, V: u, W: g.EdgeWeight(int(i))}
				cnt++
			}
		}
	}
	var vw []int64
	if g.VW != nil {
		vw = make([]int64, len(vertices))
		for i, v := range vertices {
			vw[i] = g.VW[v]
		}
	}
	res := FromTriples(len(vertices), triples[:cnt], vw)
	a.PutEdges(triples)
	return res, remap
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Xadj: append([]int32(nil), g.Xadj...),
		Adj:  append([]int32(nil), g.Adj...),
	}
	if g.EW != nil {
		c.EW = append([]int64(nil), g.EW...)
	}
	if g.VW != nil {
		c.VW = append([]int64(nil), g.VW...)
	}
	return c
}

// TotalEdgeWeight returns the sum of stored edge weights (each
// undirected edge counted twice in a symmetric graph).
func (g *Graph) TotalEdgeWeight() int64 {
	if g.EW == nil {
		return int64(g.M())
	}
	var s int64
	for _, w := range g.EW {
		s += w
	}
	return s
}

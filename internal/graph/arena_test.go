package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arena"
)

// TestArenaVariantsEquivalent proves the pooled builders produce
// graphs identical to the plain ones — including on a warm arena,
// where the staging buffer is a recycled slice.
func TestArenaVariantsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	var us, vs []int32
	var ws []int64
	for i := 0; i < 400; i++ {
		us = append(us, int32(rng.Intn(n)))
		vs = append(vs, int32(rng.Intn(n)))
		ws = append(ws, int64(rng.Intn(9)+1))
	}
	ar := arena.New()
	for round := 0; round < 3; round++ { // round 0 cold, later rounds warm
		plain := FromEdges(n, us, vs, ws, nil)
		pooled := FromEdgesArena(ar, n, us, vs, ws, nil)
		if !reflect.DeepEqual(plain, pooled) {
			t.Fatalf("round %d: FromEdgesArena diverged", round)
		}
		if !reflect.DeepEqual(plain.Symmetrize(), pooled.SymmetrizeArena(ar)) {
			t.Fatalf("round %d: SymmetrizeArena diverged", round)
		}
		verts := []int32{0, 3, 7, 11, 20, 33, 59}
		g1, r1 := plain.InducedSubgraph(verts)
		g2, r2 := pooled.InducedSubgraphArena(ar, verts)
		if !reflect.DeepEqual(g1, g2) || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("round %d: InducedSubgraphArena diverged", round)
		}
	}
}

package graph

import "math/rand"

// Grid2D returns the rows×cols 4-neighbour grid graph with unit
// weights. It is used throughout the tests as a graph whose optimal
// partitions and distances are known analytically.
func Grid2D(rows, cols int) *Graph {
	n := rows * cols
	var us, vs []int32
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				us = append(us, id(r, c), id(r, c+1))
				vs = append(vs, id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				us = append(us, id(r, c), id(r+1, c))
				vs = append(vs, id(r+1, c), id(r, c))
			}
		}
	}
	return FromEdges(n, us, vs, nil, nil)
}

// Ring returns the n-cycle with unit weights.
func Ring(n int) *Graph {
	var us, vs []int32
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		us = append(us, int32(i), int32(j))
		vs = append(vs, int32(j), int32(i))
	}
	return FromEdges(n, us, vs, nil, nil)
}

// RandomConnected returns a connected undirected graph with n vertices
// and roughly extra additional random edges beyond a random spanning
// tree, with edge weights in [1,maxW]. Deterministic for a given seed.
func RandomConnected(n, extra int, maxW int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var us, vs []int32
	var ws []int64
	addBoth := func(a, b int32, w int64) {
		us = append(us, a, b)
		vs = append(vs, b, a)
		ws = append(ws, w, w)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := int32(perm[i])
		b := int32(perm[rng.Intn(i)])
		addBoth(a, b, 1+rng.Int63n(maxW))
	}
	for e := 0; e < extra; e++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a == b {
			continue
		}
		addBoth(a, b, 1+rng.Int63n(maxW))
	}
	return FromEdges(n, us, vs, ws, nil)
}

// Star returns a star graph with the hub at vertex 0 and the given
// leaf edge weights.
func Star(leafWeights []int64) *Graph {
	n := len(leafWeights) + 1
	var us, vs []int32
	var ws []int64
	for i, w := range leafWeights {
		leaf := int32(i + 1)
		us = append(us, 0, leaf)
		vs = append(vs, leaf, 0)
		ws = append(ws, w, w)
	}
	return FromEdges(n, us, vs, ws, nil)
}

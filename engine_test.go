package topomap

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// Engine/Request API tests: golden equivalence against the legacy
// RunMapping pipeline, topology generality, batch determinism, and
// the registry surface.

// engineFixture builds one task graph and a sparse torus allocation
// shared by the engine tests.
func engineFixture(t *testing.T, procs int) (*TaskGraph, *Torus, *Allocation) {
	t.Helper()
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, procs/16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tg, topo, a
}

// TestEngineGoldenEquivalence is the API redesign's conservation law:
// Engine.Run (registry dispatch + cached routing state) must produce
// byte-identical GroupOf/NodeOf — and therefore identical metrics —
// to the legacy RunMapping path for every registered mapper on a
// torus.
func TestEngineGoldenEquivalence(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	tgc := withTestCoords(t, tg)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		tasks := tg
		if MapperCapsOf(mp).NeedsCoords {
			tasks = tgc
		}
		legacy, err := RunMapping(mp, tasks, topo, a, 1)
		if err != nil {
			t.Fatalf("%s: legacy: %v", mp, err)
		}
		got, err := eng.Run(Request{Mapper: mp, Tasks: tasks, Seed: 1})
		if err != nil {
			t.Fatalf("%s: engine: %v", mp, err)
		}
		if !reflect.DeepEqual(got.GroupOf, legacy.GroupOf) {
			t.Fatalf("%s: GroupOf diverged from legacy RunMapping", mp)
		}
		if !reflect.DeepEqual(got.NodeOf, legacy.NodeOf) {
			t.Fatalf("%s: NodeOf diverged from legacy RunMapping", mp)
		}
		if got.Metrics != legacy.Metrics {
			t.Fatalf("%s: metrics diverged:\n legacy %+v\n engine %+v", mp, legacy.Metrics, got.Metrics)
		}
	}
}

// TestEngineTopologyGeneric runs the same Request on a fat tree and a
// dragonfly — the §III "various topologies" claim as an API property.
func TestEngineTopologyGeneric(t *testing.T) {
	tg, _, _ := engineFixture(t, 64)
	tgc := withTestCoords(t, tg)
	ft, err := NewFatTree(8, 10e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := FatTreeSparseHosts(ft, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(3, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	da, err := DragonflySparseHosts(df, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		topo Topology
		a    *Allocation
	}{{"fattree", ft, fa}, {"dragonfly", df, da}} {
		eng, err := NewEngine(tc.topo, tc.a)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, mp := range RegisteredMappers() {
			if strings.HasPrefix(string(mp), "TEST-") {
				continue // registered by other tests in this binary
			}
			// The geometric mappers run here too: fat trees and
			// dragonflies expose no coordinate grid, so their node order
			// falls back to allocation order — still a valid placement.
			tasks := tg
			if MapperCapsOf(mp).NeedsCoords {
				tasks = tgc
			}
			res, err := eng.Run(Request{Mapper: mp, Tasks: tasks, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, mp, err)
			}
			if len(res.NodeOf) != tc.a.NumNodes() || len(res.GroupOf) != tg.K {
				t.Fatalf("%s/%s: result shapes wrong", tc.name, mp)
			}
			if res.Metrics.WH <= 0 {
				t.Fatalf("%s/%s: degenerate WH", tc.name, mp)
			}
			// Placements must stay on allocated hosts.
			onAlloc := map[int32]bool{}
			for _, n := range tc.a.Nodes {
				onAlloc[n] = true
			}
			for g, n := range res.NodeOf {
				if !onAlloc[n] {
					t.Fatalf("%s/%s: group %d on unallocated node %d", tc.name, mp, g, n)
				}
			}
		}
	}
}

// TestEngineRunBatchDeterministic checks the batch path: the same
// requests must yield identical placements across repeated runs and
// across worker counts, while sharing one engine (the -race run makes
// this the concurrency acceptance test too).
func TestEngineRunBatchDeterministic(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for _, mp := range Mappers() {
		for seed := int64(1); seed <= 3; seed++ {
			reqs = append(reqs, Request{Mapper: mp, Tasks: tg, Seed: seed})
		}
	}
	base, err := eng.RunBatchWorkers(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := eng.RunBatchWorkers(reqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range reqs {
			if !reflect.DeepEqual(got[i].NodeOf, base[i].NodeOf) ||
				!reflect.DeepEqual(got[i].GroupOf, base[i].GroupOf) {
				t.Fatalf("workers=%d: request %d (%s seed %d) diverged from serial run",
					workers, i, reqs[i].Mapper, reqs[i].Seed)
			}
		}
	}
}

// dragonflyFixture builds the dragonfly golden instance: a 128-task
// cagelike/PATOH graph on 8 sparse hosts of a canonical h=3
// dragonfly.
func dragonflyFixture(t *testing.T) (*TaskGraph, *Dragonfly, *Allocation) {
	t.Helper()
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionMatrix(PATOH, m, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, 128)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(3, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	da, err := DragonflySparseHosts(df, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tg, df, da
}

// TestEngineDragonflyMultipathGolden pins the engine's output on a
// dragonfly with the multipath-capable mapper (UMCA enumerates
// minimal routes through the cached view): PR 1's golden test only
// pinned torus and fat-tree behaviour. The dragonfly's minimal routes
// are unique, so UMCA must agree exactly with UMC — and both must
// reproduce the pinned placement and metrics.
func TestEngineDragonflyMultipathGolden(t *testing.T) {
	tg, df, da := dragonflyFixture(t)
	wantNodes := []int32{223, 224, 225, 226, 230, 231, 233, 234}
	if !reflect.DeepEqual(da.Nodes, wantNodes) {
		t.Fatalf("allocation drifted: %v, want %v", da.Nodes, wantNodes)
	}
	eng, err := NewEngine(df, da)
	if err != nil {
		t.Fatal(err)
	}
	wantNodeOf := []int32{226, 225, 224, 223, 230, 234, 233, 231}
	var results []*MapResult
	for _, mp := range []Mapper{UMCA, UMC} {
		res, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		if !reflect.DeepEqual(res.NodeOf, wantNodeOf) {
			t.Fatalf("%s: NodeOf = %v, want golden %v", mp, res.NodeOf, wantNodeOf)
		}
		m := res.Metrics
		if m.TH != 5520 || m.WH != 17302 || m.MMC != 279 || m.UsedLinks != 40 {
			t.Fatalf("%s: metrics drifted from golden: %+v", mp, m)
		}
		if got := fmt.Sprintf("%.6g", m.MC); got != "1.415e-07" {
			t.Fatalf("%s: MC = %s, want golden 1.415e-07", mp, got)
		}
		results = append(results, res)
	}
	// Unique minimal routes: the adaptive variant must agree with the
	// static one bit for bit.
	if results[0].Metrics != results[1].Metrics {
		t.Fatalf("UMCA diverged from UMC on unique-minimal-route dragonfly:\n %+v\n %+v",
			results[0].Metrics, results[1].Metrics)
	}
}

// TestEngineDragonflyDeterminism re-runs the dragonfly/UMCA request
// through fresh engines and through the batch pool: every path must
// produce the identical placement.
func TestEngineDragonflyDeterminism(t *testing.T) {
	tg, df, da := dragonflyFixture(t)
	base, err := NewEngine(df, da)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(Request{Mapper: UMCA, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh engine, same answer.
	fresh, err := NewEngine(df, da)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fresh.Run(Request{Mapper: UMCA, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.NodeOf, want.NodeOf) || !reflect.DeepEqual(again.GroupOf, want.GroupOf) {
		t.Fatal("fresh engine diverged on dragonfly/UMCA")
	}
	// Batch pool, repeated request, same answer regardless of workers.
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{Mapper: UMCA, Tasks: tg, Seed: 1}
	}
	for _, workers := range []int{1, 4} {
		results, err := base.RunBatchWorkers(reqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if !reflect.DeepEqual(res.NodeOf, want.NodeOf) {
				t.Fatalf("workers=%d: batch request %d diverged", workers, i)
			}
		}
	}
}

// TestEngineRunContext pins the cancellation contract: a live context
// changes nothing, a dead one stops the pipeline between stages.
func TestEngineRunContext(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunContext(context.Background(), Request{Mapper: UWH, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.NodeOf, want.NodeOf) {
		t.Fatal("RunContext with a live context diverged from Run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, Request{Mapper: UWH, Tasks: tg, Seed: 1}); err != context.Canceled {
		t.Fatalf("cancelled RunContext returned %v, want context.Canceled", err)
	}
	if _, err := eng.RunBatchContext(ctx, []Request{{Mapper: UWH, Tasks: tg, Seed: 1}}, 1); err == nil {
		t.Fatal("cancelled RunBatchContext must fail")
	}
}

// TestEngineRequestOptions exercises the functional options: the
// extra refinement pass must never regress WH, the fine-level
// refinement must report non-negative gains, and WithSimParams must
// produce a positive simulated time.
func TestEngineRequestOptions(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run(Request{Mapper: DEF, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := eng.Run(Request{Mapper: DEF, Tasks: tg, Seed: 1,
		Options: []RequestOption{WithRefinement()}})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Metrics.WH > plain.Metrics.WH {
		t.Fatalf("WithRefinement regressed WH: %d -> %d", plain.Metrics.WH, refined.Metrics.WH)
	}
	full, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 1,
		Options: []RequestOption{WithFineRefine(), WithSimParams(4096, SimParams{Seed: 1})}})
	if err != nil {
		t.Fatal(err)
	}
	if full.FineWHGain < 0 || full.FineVolGain < 0 {
		t.Fatalf("fine refinement reported negative gains: WH %d vol %d", full.FineWHGain, full.FineVolGain)
	}
	if full.SimSeconds <= 0 {
		t.Fatalf("WithSimParams produced non-positive time %g", full.SimSeconds)
	}
}

// TestEngineRefinementRespectsCapacities pins the option ordering:
// the extra WH pass runs before the capacity repair, so even with
// WithRefinement a heterogeneous allocation can never end up
// oversubscribed.
func TestEngineRefinementRespectsCapacities(t *testing.T) {
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a := &Allocation{
		Nodes:        []int32{3, 40, 77, 101, 130, 171},
		ProcsPerNode: []int{24, 8, 16, 24, 8, 16}, // 96 procs
	}
	procs := a.TotalProcs()
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	capOf := map[int32]int{}
	for i, n := range a.Nodes {
		capOf[n] = a.ProcsPerNode[i]
	}
	for _, mp := range []Mapper{UG, UWH, UMC} {
		res, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1,
			Options: []RequestOption{WithRefinement()}})
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		perNode := map[int32]int{}
		for _, g := range res.GroupOf {
			perNode[res.NodeOf[g]]++
		}
		for n, cnt := range perNode {
			if cnt > capOf[n] {
				t.Fatalf("%s: node %d hosts %d tasks, capacity %d", mp, n, cnt, capOf[n])
			}
		}
	}
}

// TestRegisterMapperPublicAPI registers a custom mapper through the
// exported registry surface and dispatches it through the engine.
func TestRegisterMapperPublicAPI(t *testing.T) {
	const name = "TEST-REVBLOCK"
	spec := NewMapper(name, MapperCaps{BlockGrouping: true}, func(in MapperInput) ([]int32, error) {
		nodeOf := make([]int32, in.Coarse.N())
		for g := range nodeOf {
			nodeOf[g] = in.Alloc.Nodes[len(in.Alloc.Nodes)-1-g]
		}
		return nodeOf, nil
	})
	if err := RegisterMapper(spec); err != nil {
		t.Fatal(err)
	}
	if err := RegisterMapper(spec); err == nil {
		t.Fatal("duplicate registration must be rejected")
	}
	found := false
	for _, mp := range RegisteredMappers() {
		if mp == Mapper(name) {
			found = true
		}
	}
	if !found {
		t.Fatalf("RegisteredMappers misses %s", name)
	}

	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(Request{Mapper: Mapper(name), Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for g, n := range res.NodeOf {
		if want := a.Nodes[a.NumNodes()-1-g]; n != want {
			t.Fatalf("group %d on node %d, want %d", g, n, want)
		}
	}
	if res.Metrics.WH <= 0 {
		t.Fatal("degenerate WH for custom mapper")
	}
}

// flatTopo hides every optional capability of a torus, leaving a bare
// Topology — the capability-gating test double.
type flatTopo struct{ t *Torus }

func (f flatTopo) Nodes() int                               { return f.t.Nodes() }
func (f flatTopo) HopDist(a, b int) int                     { return f.t.HopDist(a, b) }
func (f flatTopo) Diameter() int                            { return f.t.Diameter() }
func (f flatTopo) NeighborNodes(v int, dst []int32) []int32 { return f.t.NeighborNodes(v, dst) }
func (f flatTopo) Links() int                               { return f.t.Links() }
func (f flatTopo) Route(a, b int, dst []int32) []int32      { return f.t.Route(a, b, dst) }
func (f flatTopo) LinkBW(link int) float64                  { return f.t.LinkBW(link) }

// TestEngineCapabilityGate: a mapper that declares NeedsMultipath
// must be rejected on a topology that cannot enumerate minimal
// routes, with a clear error instead of a panic.
func TestEngineCapabilityGate(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(flatTopo{topo}, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(Request{Mapper: UMCA, Tasks: tg, Seed: 1}); err == nil {
		t.Fatal("UMCA on a non-multipath topology must fail")
	}
	// The WH family runs fine on the bare interface.
	if _, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineErrors mirrors the legacy RunMapping error contract.
func TestEngineErrors(t *testing.T) {
	tg, topo, _ := engineFixture(t, 128)
	small, err := SparseAllocation(topo, 2, 1) // 32 procs < 128 tasks
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(Request{Mapper: UG, Tasks: tg, Seed: 1}); err == nil {
		t.Fatal("want error when tasks exceed allocated processors")
	}
	ok, err := SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err = NewEngine(topo, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(Request{Mapper: Mapper("NOPE"), Tasks: tg, Seed: 1}); err == nil {
		t.Fatal("want error for unknown mapper")
	}
	if _, err := eng.Run(Request{Mapper: UG}); err == nil {
		t.Fatal("want error for missing task graph")
	}
	if _, err := NewEngine(topo, &Allocation{Nodes: []int32{1, 1}, ProcsPerNode: []int{16, 16}}); err == nil {
		t.Fatal("want error for duplicate allocation nodes")
	}
}

// TestUniformCapsEmpty is the regression test for the uniformCaps
// panic on an empty ProcsPerNode slice (procs[1:] on length 0).
func TestUniformCapsEmpty(t *testing.T) {
	for _, tc := range []struct {
		procs []int
		want  bool
	}{
		{nil, true},
		{[]int{}, true},
		{[]int{16}, true},
		{[]int{16, 16, 16}, true},
		{[]int{16, 8}, false},
	} {
		if got := uniformCaps(tc.procs); got != tc.want {
			t.Fatalf("uniformCaps(%v) = %v, want %v", tc.procs, got, tc.want)
		}
	}
}

// TestEngineEvaluateMatchesEvaluateMetrics pins the cached-view
// metric evaluation to the raw-topology one.
func TestEngineEvaluateMatchesEvaluateMetrics(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(Request{Mapper: UMC, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Evaluate(tg, res.Placement()), EvaluateMetrics(tg, topo, res.Placement()); got != want {
		t.Fatalf("cached evaluation diverged:\n want %+v\n got  %+v", want, got)
	}
}

// ExampleEngine_RunBatch is compile-checked documentation of the
// batch path; it doubles as the smallest possible engine quickstart.
func ExampleEngine_RunBatch() {
	topo := NewHopperTorus(4, 4, 4)
	a, _ := ContiguousAllocation(topo, 4, 3)
	coarse := FromEdges(4,
		[]int32{0, 1, 2, 3},
		[]int32{1, 2, 3, 0},
		[]int64{10, 10, 10, 10})
	tg := &TaskGraph{G: coarse, K: 4}
	eng, _ := NewEngine(topo, a)
	results, _ := eng.RunBatch([]Request{
		{Mapper: DEF, Tasks: tg, Seed: 1},
		{Mapper: UWH, Tasks: tg, Seed: 1},
	})
	fmt.Println("UWH no worse than DEF:", results[1].Metrics.WH <= results[0].Metrics.WH)
	// Output:
	// UWH no worse than DEF: true
}

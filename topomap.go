// Package topomap is a topology-aware task mapping library
// reproducing "Fast and high quality topology-aware task mapping"
// (Deveci, Kaya, Uçar, Çatalyürek; IPDPS 2015). It maps the
// communicating tasks of a parallel application onto a sparse
// allocation of nodes in a network — torus, fat tree, dragonfly, or
// any custom Topology — minimizing the weighted hop (WH) and maximum
// link congestion (MC) metrics with the paper's greedy construction
// and refinement algorithms.
//
// The package exposes the full evaluation pipeline:
//
//	matrix → partitioner → task graph → grouping → mapping → metrics → simulation
//
// The service-shaped core is the Engine: build it once per
// (Topology, Allocation) pair — it precomputes and caches the
// pairwise routing state of the allocated nodes — then serve mapping
// Requests against it, serially, concurrently, or in batches:
//
//	m, _ := topomap.GenerateMatrix("cagelike", topomap.Tiny)
//	topo := topomap.NewHopperTorus(8, 8, 8)
//	alloc, _ := topomap.SparseAllocation(topo, 16, 1)
//	part, _ := topomap.PartitionMatrix(topomap.PATOH, m, alloc.TotalProcs(), 1)
//	tg, _ := topomap.BuildTaskGraph(m, part, alloc.TotalProcs())
//	eng, _ := topomap.NewEngine(topo, alloc)
//	res, _ := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 1})
//	fmt.Println(res.Metrics.WH, res.Metrics.MC)
//
// The same Request runs unchanged on a fat tree or a dragonfly —
// swap the two topology lines:
//
//	ft, _ := topomap.NewFatTree(8, 10e9, 2)
//	alloc, _ := topomap.FatTreeSparseHosts(ft, 16, 1)
//	eng, _ := topomap.NewEngine(ft, alloc)
//
// Mapping algorithms are dispatched through a registry; RegisterMapper
// plugs in custom mappers next to the eleven built-ins, and
// Engine.RunBatch fans many requests out over a worker pool with
// deterministic results. NewCachedEngine serves engines from a
// process-wide LRU keyed by the canonical (topology, allocation)
// fingerprint; cmd/mapd exposes the same machinery as a resident
// HTTP service for job-launch-time mapping.
//
// Every request lowers onto a declarative, serializable Solve spec
// (Engine.RunSolve consumes one directly), and callers that want an
// outcome instead of an algorithm declare an Objective — minimize
// WH, MC, MMC, simulated seconds, or a weighted combination — and
// race a candidate portfolio with Engine.RunPortfolio: the engine
// fans the candidates over a bounded pool, scores every finished
// result, and returns a deterministic winner plus the per-candidate
// leaderboard. The winning mapper genuinely varies by topology and
// graph shape (see examples/portfolio), which is the point.
//
// Inside one request, the whole solve pipeline — grouping bisection,
// greedy construction, WH and congestion refinement, metric
// evaluation — runs on a single bounded worker pool
// (WithParallelism / Solve.Workers) with a hard determinism
// contract: worker count changes wall-clock only, never bytes.
// docs/ARCHITECTURE.md maps the paper's algorithms onto the packages
// and diagrams the pipeline and the service layers on top.
package topomap

import (
	"fmt"
	"io"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dragonfly"
	"repro/internal/fattree"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/partitioners"
	"repro/internal/rankfile"
	"repro/internal/registry"
	"repro/internal/taskgraph"
	"repro/internal/torus"
	"repro/internal/viz"
)

// Re-exported pipeline types. These are aliases of the implementing
// packages so the whole library is usable through this single import.
type (
	// Matrix is a structural sparse matrix in CSR form.
	Matrix = matrix.CSR
	// Graph is a CSR graph (task graphs, coarse graphs).
	Graph = graph.Graph
	// Torus is an N-dimensional torus network with static routing.
	Torus = torus.Torus
	// Topology is the abstract network interface.
	Topology = torus.Topology
	// MultipathTopology is a Topology that enumerates the minimal
	// routes of a dynamically routed network (tori implement it).
	MultipathTopology = torus.MultipathTopology
	// AdaptiveMetrics are the expected-congestion metrics under
	// dynamic routing (EMC/EMMC/EAC/EAMC).
	AdaptiveMetrics = metrics.AdaptiveMetrics
	// Allocation is a reserved node set with per-node capacities.
	Allocation = alloc.Allocation
	// TaskGraph is a directed MPI task communication graph.
	TaskGraph = taskgraph.TaskGraph
	// PartitionMetrics are the partition metrics TV/TM/MSV/MSM.
	PartitionMetrics = taskgraph.Metrics
	// MapMetrics are the mapping metrics TH/WH/MMC/MC/AMC/AC and the
	// regression covariates.
	MapMetrics = metrics.MapMetrics
	// Placement composes task→group→node.
	Placement = metrics.Placement
	// Partitioner names one of the seven partitioner personalities.
	Partitioner = partitioners.Name
	// SimParams tunes the execution-time simulator.
	SimParams = netsim.Params
	// Tier selects dataset scale.
	Tier = gen.Tier
	// FatTree is a k-ary fat-tree network with static D-mod-k
	// routing; it implements Topology and MultipathTopology.
	FatTree = fattree.FatTree
	// Dragonfly is a canonical dragonfly network (Cray Aries class)
	// with unique hierarchical minimal routing; it implements
	// Topology and MultipathTopology.
	Dragonfly = dragonfly.Dragonfly
)

// Dataset tiers.
const (
	// Tiny is the CI-sized tier: seconds-scale figure regeneration.
	Tiny = gen.Tiny
	// Small is the intermediate tier for local experimentation.
	Small = gen.Small
	// Large approaches the paper's original matrix scales.
	Large = gen.Large
)

// Partitioner personalities (§IV-A): the five external tools of the
// evaluation emulated over the repo's two multilevel partitioners,
// plus the three UMPA objectives.
const (
	// SCOTCH emulates the Scotch graph partitioner personality.
	SCOTCH = partitioners.SCOTCHP
	// KAFFPA emulates the KaFFPa graph partitioner personality.
	KAFFPA = partitioners.KAFFPAP
	// METIS emulates the METIS graph partitioner personality.
	METIS = partitioners.METISP
	// PATOH emulates the PaToH hypergraph partitioner personality
	// (the default of the paper's pipeline).
	PATOH = partitioners.PATOHP
	// UMPAMV is UMPA minimizing the maximum send volume.
	UMPAMV = partitioners.UMPAMV
	// UMPAMM is UMPA minimizing the maximum send message count.
	UMPAMM = partitioners.UMPAMM
	// UMPATM is UMPA minimizing the total message count.
	UMPATM = partitioners.UMPATM
)

// Partitioners returns all seven personalities in figure order.
func Partitioners() []Partitioner { return partitioners.All() }

// NewHopperTorus returns a 3D torus with Hopper's heterogeneous
// Gemini link bandwidths.
func NewHopperTorus(x, y, z int) *Torus { return torus.NewHopper3D(x, y, z) }

// NewTorus returns a torus with arbitrary dimensions and
// per-dimension bandwidths (supports the 5D/6D networks of the
// paper's introduction).
func NewTorus(dims []int, bw []float64) *Torus { return torus.New(dims, bw) }

// NewTorusMesh returns the mesh (no wraparound) counterpart of
// NewTorus.
func NewTorusMesh(dims []int, bw []float64) *Torus { return torus.NewMesh(dims, bw) }

// NewFatTree returns a k-ary fat tree (k even): k³/4 hosts on k pods
// of k/2 edge and k/2 aggregation switches plus (k/2)² cores. bwHost
// is the host-uplink bandwidth; taper >= 1 divides the bandwidth per
// level upward (1 = full bisection). Hosts are vertices 0..k³/4-1;
// the mapping algorithms and metrics run on it unchanged (§III: the
// WH algorithms "can be applied to various topologies").
func NewFatTree(k int, bwHost, taper float64) (*FatTree, error) {
	return fattree.New(k, bwHost, taper)
}

// FatTreeSparseHosts reserves n hosts on a busy fat tree the way
// SparseAllocation does on a torus: non-contiguous but locality
// biased, with 16 processors per host.
func FatTreeSparseHosts(ft *FatTree, n int, seed int64) (*Allocation, error) {
	return fattree.SparseHosts(ft, n, alloc.DefaultProcsPerNode, seed)
}

// NewDragonfly returns a canonical dragonfly with h global links per
// router: groups of 2h routers (h hosts each), 2h²+1 groups, one
// global link per group pair, full local mesh per group, and unique
// hierarchical minimal routing. Hosts are vertices 0..Hosts()-1. The
// third topology family behind the §III "various topologies" claim.
func NewDragonfly(h int, bwHost, bwLocal, bwGlobal float64) (*Dragonfly, error) {
	return dragonfly.New(h, bwHost, bwLocal, bwGlobal)
}

// DragonflySparseHosts reserves n hosts on a busy dragonfly,
// non-contiguous but locality biased, with 16 processors per host.
func DragonflySparseHosts(d *Dragonfly, n int, seed int64) (*Allocation, error) {
	return dragonfly.SparseHosts(d, n, alloc.DefaultProcsPerNode, seed)
}

// SparseAllocation reserves n nodes the way Cray's scheduler does:
// non-contiguous but locality-biased, with 16 processors per node.
func SparseAllocation(t *Torus, n int, seed int64) (*Allocation, error) {
	return alloc.Generate(t, n, alloc.Config{Mode: alloc.Sparse, Seed: seed})
}

// ContiguousAllocation reserves n consecutive nodes in machine order.
func ContiguousAllocation(t *Torus, n int, seed int64) (*Allocation, error) {
	return alloc.Generate(t, n, alloc.Config{Mode: alloc.Contiguous, Seed: seed})
}

// DatasetNames lists the 25 synthetic workload matrices.
func DatasetNames() []string { return gen.Names() }

// FromEdges builds a graph from a directed weighted edge list
// (parallel edges merged, self loops dropped); use it to hand-author
// task graphs for GreedyMap / RunMapping.
func FromEdges(n int, us, vs []int32, ws []int64) *Graph {
	return graph.FromEdges(n, us, vs, ws, nil)
}

// StencilTaskGraph generates the halo-exchange task graph of an
// nx×ny×nz structured grid: one task per cell, face-neighbor exchanges
// of volume vol (5-point in 2D when nz == 1, 7-point in 3D), and
// per-task grid coordinates attached — the canonical
// coordinate-carrying workload for the geometric mappers.
func StencilTaskGraph(nx, ny, nz int, vol int64) (*TaskGraph, error) {
	return taskgraph.Stencil(nx, ny, nz, vol)
}

// ReadTaskGraph parses a task graph from the text edge-list format
// ("src dst volume" lines; see TaskGraph.Encode).
func ReadTaskGraph(r io.Reader) (*TaskGraph, error) { return taskgraph.Read(r) }

// GenerateMatrix builds a dataset matrix by name at the given tier.
func GenerateMatrix(name string, tier Tier) (*Matrix, error) {
	spec, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(tier), nil
}

// PartitionMatrix partitions the rows of m into k parts with the
// given personality.
func PartitionMatrix(p Partitioner, m *Matrix, k int, seed int64) ([]int32, error) {
	return partitioners.Run(p, m, k, seed)
}

// BuildTaskGraph constructs the directed MPI task graph of a k-part
// 1D row-wise SpMV on m.
func BuildTaskGraph(m *Matrix, part []int32, k int) (*TaskGraph, error) {
	return taskgraph.Build(m, part, k)
}

// MLPipe generates a stage-parallel inference-pipeline task graph
// with skewed per-task compute loads — the heterogeneous-processor
// benchmark workload (see taskgraph.MLPipe).
func MLPipe(stages, width int, seed int64) (*TaskGraph, error) {
	return taskgraph.MLPipe(stages, width, seed)
}

// Mapper names a mapping algorithm of the evaluation (§IV-B).
type Mapper string

// The mappers: first the seven of the paper's figures (the Hopper
// default, two baselines, four UMPA variants), then the extension
// variants the paper sketches but does not plot.
const (
	// DEF is the SMP-style default mapping of Hopper: ranks fill the
	// allocated nodes in scheduler order, block by block — the
	// baseline every figure normalizes to.
	DEF Mapper = "DEF"
	// TMAP is the LibTopoMap-like baseline: recursive bipartitioning
	// with MC as its primary metric, falling back to DEF when it
	// cannot improve on it.
	TMAP Mapper = "TMAP"
	// SMAP is the Scotch-like baseline: dual recursive
	// bipartitioning of the task graph and the allocated nodes.
	SMAP Mapper = "SMAP"
	// UG is the paper's greedy construction alone (Algorithm 1, the
	// better of NBFS ∈ {0,1}).
	UG Mapper = "UG"
	// UWH is UG followed by weighted-hop swap refinement
	// (Algorithm 2) — the paper's speed/quality sweet spot.
	UWH Mapper = "UWH"
	// UMC is UG followed by volume-congestion refinement
	// (Algorithm 3), minimizing the maximum link congestion MC.
	UMC Mapper = "UMC"
	// UMMC is UG followed by message-congestion refinement: the
	// Algorithm 3 adaptation that counts messages per link (MMC)
	// instead of volume.
	UMMC Mapper = "UMMC"
	// UTH is the TH-objective variant (§III: "adaptation ... trivial").
	UTH Mapper = "UTH"
	// TMAPG is LibTopoMap's greedy construction strategy (the library
	// ships six algorithms; the paper plots its best, recursive
	// bipartitioning = TMAP).
	TMAPG Mapper = "TMAPG"
	// UML is the multilevel WH mapper sketched in §III-B ("in a
	// multilevel fashion from coarser to finer levels"): a heavy-edge
	// matching hierarchy placed by BFS region growth and refined with
	// cluster swaps level by level, finishing with Algorithm 2.
	UML Mapper = "UML"
	// UMCA is the dynamic-routing congestion variant of §III-C's
	// closing remark: congestion refinement over the expected link
	// loads of an adaptively routed torus (Blue Gene style), instead
	// of the exact loads of static routing.
	UMCA Mapper = "UMCA"
	// HET is the hetero-aware greedy construction: supertask groups in
	// descending load order each take the unassigned node minimizing
	// the group's compute finish time (load over node speed), breaking
	// ties toward communication locality. Pair it with per-task loads,
	// per-node speeds and the "makespan" objective; on homogeneous
	// inputs it degrades to a plain locality greedy.
	HET Mapper = "HET"
	// GEOM is the geometric mapper: multi-jagged recursive coordinate
	// bisection of the supertask centroids (one weight-balanced cut
	// along the longest extent per level) married to a Hilbert-curve
	// order of the allocated nodes. Requires per-task coordinates on
	// the task graph (TaskGraph.SetCoords).
	GEOM Mapper = "GEOM"
	// SFCM is the pure space-filling-curve mapper: supertask centroids
	// in Hilbert order onto allocated nodes in Hilbert order — the
	// SFC-to-SFC placement geometric frameworks default to. Requires
	// per-task coordinates on the task graph.
	SFCM Mapper = "SFCM"
)

// Mappers returns the mappers evaluated in Figure 2, in order.
func Mappers() []Mapper {
	return mapperNames(registry.Figure2Names())
}

// RegisteredMappers returns every mapper known to the registry —
// built-ins first in figure order, then custom registrations — for
// CLI flag parsing and sweeps.
func RegisteredMappers() []Mapper {
	return mapperNames(registry.Names())
}

func mapperNames(names []string) []Mapper {
	out := make([]Mapper, len(names))
	for i, n := range names {
		out[i] = Mapper(n)
	}
	return out
}

// MapperSpec is a registered mapping algorithm: a name, capability
// flags, and the mapping function the Engine dispatches to.
type MapperSpec = registry.MapperSpec

// MapperInput is everything a registered mapper receives for one
// request: the coarse supertask graph (plus its message-count view
// when requested), the topology, the allocation and the seed.
type MapperInput = registry.Input

// MapperCaps declares what the Engine must prepare for a mapper:
// a message-count coarse graph, multipath route enumeration,
// SMP-style block grouping, or per-task coordinates on the task
// graph.
type MapperCaps = registry.Caps

// MapperCapsOf returns the declared capability requirements of a
// registered mapper; unknown names report no requirements.
func MapperCapsOf(name Mapper) MapperCaps {
	if s, ok := registry.Lookup(string(name)); ok {
		return s.Caps()
	}
	return MapperCaps{}
}

// NewMapper wraps a function as a MapperSpec for RegisterMapper.
func NewMapper(name string, caps MapperCaps, fn func(MapperInput) ([]int32, error)) MapperSpec {
	return registry.NewFunc(name, caps, fn)
}

// RegisterMapper plugs a custom mapping algorithm into the registry,
// making it dispatchable by name through Engine.Run next to the
// built-ins. Duplicate names are rejected — a registered mapper can
// never be silently replaced.
func RegisterMapper(s MapperSpec) error { return registry.Register(s) }

// EvaluateMetrics computes the mapping metrics of an arbitrary
// placement of the fine task graph.
func EvaluateMetrics(tg *TaskGraph, topo Topology, pl *Placement) MapMetrics {
	return metrics.Compute(tg.G, topo, pl)
}

// EvaluateAdaptiveMetrics computes the expected-congestion metrics of
// a placement under the dynamic-routing model (§III-C): every message
// is spread uniformly over its minimal dimension-ordered routes.
func EvaluateAdaptiveMetrics(tg *TaskGraph, topo MultipathTopology, pl *Placement) AdaptiveMetrics {
	return metrics.ComputeAdaptive(tg.G, topo, pl)
}

// SimulateCommOnly runs the communication-only application simulator
// (§IV-C) and returns seconds.
func SimulateCommOnly(tg *TaskGraph, topo Topology, pl *Placement, bytesPerUnit float64, p SimParams) float64 {
	return netsim.CommOnly(tg.G, topo, pl, bytesPerUnit, p).Seconds
}

// SimulateSpMV runs the SpMV kernel simulator (§IV-D) for the given
// iteration count and returns seconds.
func SimulateSpMV(tg *TaskGraph, topo Topology, pl *Placement, iters int, p SimParams) float64 {
	return netsim.SpMV(tg.G, topo, pl, iters, p).Seconds
}

// SimulateCommOnlyAdaptive runs the communication-only simulator on
// an adaptively routed network (§III-C): every message is sprayed
// evenly over its minimal routes. Use it to evaluate mappings for
// Blue Gene style tori or ECMP fat trees in execution time, not just
// in the EMC metric.
func SimulateCommOnlyAdaptive(tg *TaskGraph, topo MultipathTopology, pl *Placement, bytesPerUnit float64, p SimParams) float64 {
	return netsim.CommOnlyAdaptive(tg.G, topo, pl, bytesPerUnit, p).Seconds
}

// GreedyMap exposes Algorithm 1 directly on a symmetric coarse graph:
// it maps the graph's vertices one-to-one onto allocated nodes
// minimizing WH, trying NBFS ∈ {0,1} and keeping the better mapping.
func GreedyMap(coarse *Graph, topo Topology, allocNodes []int32) []int32 {
	return core.GreedyBest(coarse, topo, allocNodes, core.WeightedHops)
}

// RefineWH exposes Algorithm 2: in-place WH swap refinement.
// It returns the WH improvement.
func RefineWH(coarse *Graph, topo Topology, allocNodes, nodeOf []int32) int64 {
	return core.RefineWH(coarse, topo, allocNodes, nodeOf, core.RefineOptions{})
}

// RefineMC exposes Algorithm 3 (volume congestion): in-place MC
// refinement. It returns the number of swaps applied.
func RefineMC(coarse *Graph, topo Topology, allocNodes, nodeOf []int32) int {
	return core.RefineCongestion(coarse, topo, allocNodes, nodeOf, core.VolumeCongestion, core.RefineOptions{})
}

// RefineFineLevel applies WH refinement on the finer-level task
// vertices (§III-B): individual tasks swap groups when that lowers WH
// without raising the inter-node communication volume. It mutates
// res.GroupOf and returns the WH and volume improvements. The paper
// leaves this variant off by default; it is exposed for
// experimentation and the ablation benchmarks.
func RefineFineLevel(tg *TaskGraph, topo Topology, res *MapResult) (whGain, volGain int64) {
	return core.RefineWHFine(tg.Symmetric(), topo, res.GroupOf, res.NodeOf, core.RefineOptions{})
}

// RefineMCAdaptive exposes the dynamic-routing adaptation of
// Algorithm 3 (§III-C's closing remark): congestion refinement over
// the expected link loads of a multipath network (adaptively routed
// torus, ECMP fat tree). It returns the number of swaps applied.
func RefineMCAdaptive(coarse *Graph, topo MultipathTopology, allocNodes, nodeOf []int32) int {
	return core.RefineCongestionAdaptive(coarse, topo, allocNodes, nodeOf, core.VolumeCongestion, core.RefineOptions{})
}

// GroupOntoAllocation groups the fine tasks of tg onto the allocated
// nodes (graph partitioning with the capacity fix-up of §III-A) and
// returns the group vector together with the aggregated symmetric
// coarse graph the mapping algorithms consume.
//
// Deprecated: Engine.Run performs grouping, mapping and metric
// evaluation on any Topology in one call; this remains for code that
// drives GreedyMap / RefineWH / RefineMC by hand.
func GroupOntoAllocation(tg *TaskGraph, a *Allocation, seed int64) (group []int32, coarse *Graph, err error) {
	if tg.K > a.TotalProcs() {
		return nil, nil, fmt.Errorf("topomap: %d tasks exceed %d allocated processors", tg.K, a.TotalProcs())
	}
	caps := make([]int64, a.NumNodes())
	for i, p := range a.ProcsPerNode {
		caps[i] = int64(p)
	}
	group, err = taskgraph.GroupTasks(tg, caps, seed)
	if err != nil {
		return nil, nil, err
	}
	return group, taskgraph.CoarseGraph(tg, group, a.NumNodes()), nil
}

// WriteRankOrder emits a Cray-style MPICH_RANK_ORDER file realizing
// the placement on the allocation under SMP block filling
// (MPICH_RANK_REORDER_METHOD=3) — the channel through which a mapping
// reaches a real MPI launch. It fails when the placement cannot be
// realized by block filling (a node over capacity, or an interior
// node left partially filled).
func WriteRankOrder(w io.Writer, pl *Placement, a *Allocation) error {
	return rankfile.WriteRankOrder(w, pl, a)
}

// ReadRankOrder parses a rank-order file and validates that it is a
// permutation of 0..n-1.
func ReadRankOrder(r io.Reader) ([]int32, error) { return rankfile.ReadRankOrder(r) }

// PlacementFromRankOrder reconstructs the rank→node placement an MPI
// runtime realizes from a rank-order file on the given allocation —
// use it to evaluate the metrics of an existing rank file.
func PlacementFromRankOrder(order []int32, a *Allocation) (*Placement, error) {
	return rankfile.PlacementFromRankOrder(order, a)
}

// WriteNodeList emits an allocation as "node procs" lines.
func WriteNodeList(w io.Writer, a *Allocation) error { return rankfile.WriteNodeList(w, a) }

// ReadNodeList parses an allocation from "node [procs]" lines, the
// form a launcher wrapper captures from the scheduler (§II-B). Node
// order is preserved as the scheduler's allocation order.
func ReadNodeList(r io.Reader) (*Allocation, error) { return rankfile.ReadNodeList(r) }

// RenderCongestionHistogram writes an ASCII histogram of the per-link
// volume congestion under the placement — the spread behind the MC
// and AC aggregates.
func RenderCongestionHistogram(w io.Writer, tg *TaskGraph, topo Topology, pl *Placement, buckets int) error {
	return viz.CongestionHistogram(w, tg.G, topo, pl, buckets)
}

// RenderTopLinks writes a table of the n most congested links with
// their torus coordinates, routed volume and message counts.
func RenderTopLinks(w io.Writer, tg *TaskGraph, topo *Torus, pl *Placement, n int) error {
	return viz.FprintTopLinks(w, tg.G, topo, pl, n)
}

// RenderSliceMap draws one z-slice of a 3D torus as a character grid
// showing free, allocated and task-hosting nodes (letters scale with
// hosted communication volume).
func RenderSliceMap(w io.Writer, topo *Torus, a *Allocation, coarse *Graph, nodeOf []int32, z int) error {
	return viz.SliceMap(w, topo, a, coarse, nodeOf, z)
}

// RefineMMC exposes the message-congestion adaptation of Algorithm 3.
// The graph's edge weights are read as message multiplicities: pass a
// unit-weight graph when every edge is one message, or a
// message-count-weighted coarse graph for grouped tasks.
func RefineMMC(msgGraph *Graph, topo Topology, allocNodes, nodeOf []int32) int {
	return core.RefineCongestion(msgGraph, topo, allocNodes, nodeOf, core.MessageCongestion, core.RefineOptions{})
}

package topomap

import (
	"strings"
	"testing"
)

// Objective tests: golden scoring pinned against the MapMetrics
// fields, the weighted combination arithmetic, the parser behind the
// CLI flag, and the validation surface.

// goldenResult is a hand-built solve result with one distinct value
// per metric, so a wrong field resolution cannot score right.
func goldenResult() *MapResult {
	return &MapResult{
		Metrics: MapMetrics{
			TH: 10, WH: 100, MMC: 5, MC: 2.5, AMC: 1.5, AC: 0.5,
			ICV: 300, ICM: 40, MNRV: 70, MNRM: 8, UsedLinks: 12,
			Makespan: 900, LoadImbalance: 1.25,
		},
		SimSeconds: 0.25,
		SimRan:     true,
	}
}

// TestObjectiveSimZeroSeconds: zero simulated seconds on a solve that
// did run the simulator is a score of 0, not a missing-sim error —
// and a solve that never simulated is the error, whatever its
// SimSeconds value says.
func TestObjectiveSimZeroSeconds(t *testing.T) {
	ran := &MapResult{SimRan: true}
	if score, err := MinimizeMetric(SimSecondsMetric).Score(ran); err != nil || score != 0 {
		t.Fatalf("simulated zero-communication solve scored (%g, %v), want (0, nil)", score, err)
	}
	if _, err := MinimizeMetric(SimSecondsMetric).Score(&MapResult{SimSeconds: 0.5}); err == nil {
		t.Fatal("scoring sim_seconds on a solve without a sim spec must fail")
	}
}

// TestObjectiveScoreGolden pins every scoreable metric name to the
// MapMetrics field it must read.
func TestObjectiveScoreGolden(t *testing.T) {
	res := goldenResult()
	golden := map[string]float64{
		"th": 10, "wh": 100, "mmc": 5, "mc": 2.5, "amc": 1.5, "ac": 0.5,
		"icv": 300, "icm": 40, "mnrv": 70, "mnrm": 8, "used_links": 12,
		"makespan": 900, "load_imbalance": 1.25,
		"sim_seconds": 0.25,
	}
	names := ObjectiveMetricNames()
	if len(names) != len(golden) {
		t.Fatalf("ObjectiveMetricNames lists %d metrics, golden table has %d", len(names), len(golden))
	}
	for _, name := range names {
		want, ok := golden[name]
		if !ok {
			t.Fatalf("no golden value for metric %q", name)
		}
		got, err := MinimizeMetric(name).Score(res)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s scored %g, want %g", name, got, want)
		}
		// Case-insensitive resolution.
		if got, _ := MinimizeMetric(strings.ToUpper(name)).Score(res); got != want {
			t.Fatalf("%s (upper-case) scored %g, want %g", name, got, want)
		}
	}
}

// TestObjectiveWeightedScore pins the weighted-combination sum and
// the zero value's WH default.
func TestObjectiveWeightedScore(t *testing.T) {
	res := goldenResult()
	combo := Objective{Terms: []ObjectiveTerm{
		{Metric: "mc", Weight: 2},   // 2 * 2.5 = 5
		{Metric: "wh", Weight: 0.5}, // 0.5 * 100 = 50
		{Metric: "mmc", Weight: 3},  // 3 * 5 = 15
	}}
	got, err := combo.Score(res)
	if err != nil {
		t.Fatal(err)
	}
	if got != 70 {
		t.Fatalf("weighted score = %g, want 70", got)
	}
	zero, err := Objective{}.Score(res)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 100 {
		t.Fatalf("zero-value objective scored %g, want WH = 100", zero)
	}
	if def, _ := DefaultObjective().Score(res); def != zero {
		t.Fatalf("DefaultObjective scored %g, zero value %g", def, zero)
	}
}

// TestObjectiveValidate walks the rejection surface.
func TestObjectiveValidate(t *testing.T) {
	cases := []struct {
		name string
		obj  Objective
		want string
	}{
		{"unknown minimize", MinimizeMetric("latency"), "unknown objective metric"},
		{"unknown term", Objective{Terms: []ObjectiveTerm{{Metric: "nope", Weight: 1}}}, "unknown objective metric"},
		{"both forms", Objective{Minimize: "wh", Terms: []ObjectiveTerm{{Metric: "mc", Weight: 1}}}, "pick one"},
		{"zero weight", Objective{Terms: []ObjectiveTerm{{Metric: "mc", Weight: 0}}}, "positive"},
		{"negative weight", Objective{Terms: []ObjectiveTerm{{Metric: "mc", Weight: -1}}}, "positive"},
		{"duplicate metric", Objective{Terms: []ObjectiveTerm{{Metric: "mc", Weight: 1}, {Metric: "MC", Weight: 2}}}, "twice"},
	}
	for _, tc := range cases {
		err := tc.obj.Validate()
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	for _, ok := range []Objective{
		{},
		MinimizeMetric("mc"),
		{Terms: []ObjectiveTerm{{Metric: "mc", Weight: 0.7}, {Metric: "wh", Weight: 0.3}}},
	} {
		if err := ok.Validate(); err != nil {
			t.Fatalf("%+v: unexpected error %v", ok, err)
		}
	}
	if !MinimizeMetric("sim_seconds").NeedsSim() {
		t.Fatal("sim_seconds objective must report NeedsSim")
	}
	if MinimizeMetric("wh").NeedsSim() {
		t.Fatal("wh objective must not report NeedsSim")
	}
}

// TestParseObjective pins the CLI/flag syntax and its round trip
// through String.
func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("mc")
	if err != nil || o.Minimize != "mc" {
		t.Fatalf("ParseObjective(mc) = %+v, %v", o, err)
	}
	o, err = ParseObjective("mc:0.7,wh:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Terms) != 2 || o.Terms[0] != (ObjectiveTerm{"mc", 0.7}) || o.Terms[1] != (ObjectiveTerm{"wh", 0.3}) {
		t.Fatalf("ParseObjective(mc:0.7,wh:0.3) = %+v", o)
	}
	if s := o.String(); s != "mc:0.7,wh:0.3" {
		t.Fatalf("String() = %q", s)
	}
	if rt, err := ParseObjective(o.String()); err != nil || rt.String() != o.String() {
		t.Fatalf("String round trip diverged: %+v, %v", rt, err)
	}
	if empty, err := ParseObjective(""); err != nil || empty.Minimize != "" || empty.Terms != nil {
		t.Fatalf("ParseObjective(\"\") = %+v, %v", empty, err)
	}
	for _, bad := range []string{"latency", "mc:zero", "mc:", "mc:1,mc:2", "mc,wh"} {
		if _, err := ParseObjective(bad); err == nil {
			t.Fatalf("ParseObjective(%q): want error", bad)
		}
	}
}

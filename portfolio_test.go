package topomap

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Portfolio tests: deterministic winner selection at any worker
// count, objective-driven ranking, candidate auto-expansion with
// capability filtering, fail-fast validation, and best-so-far
// behaviour under a deadline. The worker-count tests run under
// `make race`.

// portfolioFixture builds the shared portfolio instance: the 128-task
// engine fixture plus the seven Figure-2 mappers as candidates.
func portfolioFixture(t *testing.T) (*Engine, *TaskGraph, []Solve) {
	t.Helper()
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	var cands []Solve
	for _, mp := range Mappers() {
		cands = append(cands, Solve{Mapper: mp, Seed: 3})
	}
	if len(cands) < 6 {
		t.Fatalf("fixture has %d candidates, want >= 6", len(cands))
	}
	return eng, tg, cands
}

// TestEnginePortfolioDeterministic is the tentpole acceptance: a
// >= 6-candidate portfolio returns the same winner and the same
// leaderboard order — and a byte-identical winning rankfile — at
// workers 1, 2 and 8.
func TestEnginePortfolioDeterministic(t *testing.T) {
	eng, tg, cands := portfolioFixture(t)
	req := PortfolioRequest{Tasks: tg, Candidates: cands, Objective: MinimizeMetric("mc")}

	req.Workers = 1
	base, err := eng.RunPortfolio(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Leaderboard) != len(cands) {
		t.Fatalf("leaderboard has %d entries, want %d", len(base.Leaderboard), len(cands))
	}
	if base.Skipped != 0 {
		t.Fatalf("uncancelled portfolio skipped %d candidates", base.Skipped)
	}
	baseRF := rankfileBytes(t, base.Best, eng.Allocation())
	for _, workers := range []int{2, 8} {
		req.Workers = workers
		got, err := eng.RunPortfolio(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Winner != base.Winner {
			t.Fatalf("workers=%d: winner %d (%s), want %d (%s)", workers,
				got.Winner, got.Best.Mapper, base.Winner, base.Best.Mapper)
		}
		for i := range base.Leaderboard {
			b, g := base.Leaderboard[i], got.Leaderboard[i]
			if g.Index != b.Index || g.Score != b.Score || g.Skipped != b.Skipped {
				t.Fatalf("workers=%d: leaderboard rank %d diverged: %+v vs %+v", workers, i, g, b)
			}
		}
		if rf := rankfileBytes(t, got.Best, eng.Allocation()); rf != baseRF {
			t.Fatalf("workers=%d: winning rankfile bytes diverged", workers)
		}
	}

	// The winning result is byte-identical to solving the winning
	// candidate directly.
	direct, err := eng.RunSolve(context.Background(), tg, cands[base.Winner])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.NodeOf, base.Best.NodeOf) ||
		!reflect.DeepEqual(direct.GroupOf, base.Best.GroupOf) ||
		direct.Metrics != base.Best.Metrics {
		t.Fatal("portfolio winner diverged from a direct RunSolve of the same candidate")
	}
}

// TestEnginePortfolioObjectiveRanking: the leaderboard is sorted
// ascending by the declared objective, the winner minimizes it, and
// changing the objective re-ranks the same candidate set.
func TestEnginePortfolioObjectiveRanking(t *testing.T) {
	eng, tg, cands := portfolioFixture(t)
	for _, metric := range []string{"mc", "wh", "mmc", "ac"} {
		res, err := eng.RunPortfolio(context.Background(), PortfolioRequest{
			Tasks: tg, Candidates: cands, Objective: MinimizeMetric(metric)})
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		for i, entry := range res.Leaderboard {
			score, err := MinimizeMetric(metric).Score(entry.Result)
			if err != nil {
				t.Fatalf("%s: %v", metric, err)
			}
			if score != entry.Score {
				t.Fatalf("%s: rank %d reports score %g, metrics say %g", metric, i, entry.Score, score)
			}
			if i > 0 && entry.Score < res.Leaderboard[i-1].Score {
				t.Fatalf("%s: leaderboard not ascending at rank %d", metric, i)
			}
		}
		if res.Leaderboard[0].Index != res.Winner || res.Leaderboard[0].Result != res.Best {
			t.Fatalf("%s: winner fields disagree with leaderboard head", metric)
		}
	}
}

// TestEnginePortfolioAutoCandidates: an empty candidate list expands
// to every registered mapper the topology can dispatch — multipath
// mappers included on a torus, excluded on a bare Topology that
// cannot enumerate minimal routes.
func TestEnginePortfolioAutoCandidates(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	names := map[Mapper]bool{}
	for _, mp := range eng.CompatibleMappers() {
		names[mp] = true
	}
	if !names[UMCA] {
		t.Fatal("torus CompatibleMappers misses the multipath mapper UMCA")
	}
	flat, err := NewEngine(flatTopo{topo}, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range flat.CompatibleMappers() {
		if mp == UMCA {
			t.Fatal("non-multipath topology still lists UMCA as compatible")
		}
	}
	res, err := flat.RunPortfolio(context.Background(), PortfolioRequest{Tasks: tg, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaderboard) != len(flat.CompatibleMappers()) {
		t.Fatalf("auto-expanded portfolio ran %d candidates, want %d",
			len(res.Leaderboard), len(flat.CompatibleMappers()))
	}
	for _, entry := range res.Leaderboard {
		if entry.Solve.Seed != 2 {
			t.Fatalf("auto candidate %s ran at seed %d, want the request seed 2", entry.Solve.Mapper, entry.Solve.Seed)
		}
	}
}

// TestEnginePortfolioValidation: duplicate (mapper, seed) candidates,
// unknown mappers, malformed objectives and sim-scoring objectives
// without a sim spec are all rejected before any solve runs.
func TestEnginePortfolioValidation(t *testing.T) {
	eng, tg, _ := portfolioFixture(t)
	cases := []struct {
		name string
		req  PortfolioRequest
		want string
	}{
		{"duplicate candidates",
			PortfolioRequest{Tasks: tg, Candidates: []Solve{{Mapper: UWH, Seed: 1}, {Mapper: UMC, Seed: 1}, {Mapper: UWH, Seed: 1}}},
			"duplicate"},
		{"unknown mapper",
			PortfolioRequest{Tasks: tg, Candidates: []Solve{{Mapper: "NOPE", Seed: 1}}},
			"unknown mapper"},
		{"unknown objective metric",
			PortfolioRequest{Tasks: tg, Candidates: []Solve{{Mapper: UWH, Seed: 1}}, Objective: MinimizeMetric("latency")},
			"unknown objective metric"},
		{"both minimize and terms",
			PortfolioRequest{Tasks: tg, Candidates: []Solve{{Mapper: UWH, Seed: 1}},
				Objective: Objective{Minimize: "wh", Terms: []ObjectiveTerm{{Metric: "mc", Weight: 1}}}},
			"pick one"},
		{"sim objective without sim spec",
			PortfolioRequest{Tasks: tg, Candidates: []Solve{{Mapper: UWH, Seed: 1}}, Objective: MinimizeMetric("sim_seconds")},
			"sim spec"},
		{"no task graph",
			PortfolioRequest{Candidates: []Solve{{Mapper: UWH, Seed: 1}}},
			"task graph"},
	}
	for _, tc := range cases {
		_, err := eng.RunPortfolio(context.Background(), tc.req)
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A refine-only variation of the same (mapper, seed) is also a
	// duplicate: candidates must differ in mapper or seed, so every
	// leaderboard line stays identifiable by that pair.
	_, err := eng.RunPortfolio(context.Background(), PortfolioRequest{Tasks: tg,
		Candidates: []Solve{{Mapper: DEF, Seed: 1}, {Mapper: DEF, Seed: 1, Refine: true}}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("refine-only duplicate accepted: %v", err)
	}
}

// TestEnginePortfolioSimObjective: with a request-level SimSpec, a
// sim_seconds objective runs the simulator for every candidate and
// ranks by simulated time.
func TestEnginePortfolioSimObjective(t *testing.T) {
	eng, tg, cands := portfolioFixture(t)
	res, err := eng.RunPortfolio(context.Background(), PortfolioRequest{
		Tasks:      tg,
		Candidates: cands,
		Objective:  MinimizeMetric(SimSecondsMetric),
		Sim:        &SimSpec{BytesPerUnit: 4096, Params: SimParams{Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range res.Leaderboard {
		if entry.Result.SimSeconds <= 0 {
			t.Fatalf("%s: candidate solved without simulation", entry.Solve.Mapper)
		}
		if entry.Score != entry.Result.SimSeconds {
			t.Fatalf("%s: score %g != sim seconds %g", entry.Solve.Mapper, entry.Score, entry.Result.SimSeconds)
		}
	}
}

// registerSlowPoll lazily registers a mapper that blocks until the
// solve's context dies (polling cooperatively like a real mapper),
// then reports the cancellation; with a live context it places
// identity after a bounded wait. The deadline test uses it as the
// candidate that never beats the clock. Registration is lazy — not
// init — so the registry-sweeping tests never pick it up by accident.
var slowPollOnce sync.Once

func registerSlowPoll(t *testing.T) {
	t.Helper()
	slowPollOnce.Do(func() {
		err := RegisterMapper(NewMapper("TEST-SLOWPOLL", MapperCaps{},
			func(in MapperInput) ([]int32, error) {
				for i := 0; i < 2000; i++ { // 10s bound: never wins a deadline race
					if in.Exec != nil && in.Exec.Par.Cancelled() {
						return nil, context.Canceled
					}
					time.Sleep(5 * time.Millisecond)
				}
				nodeOf := make([]int32, in.Coarse.N())
				copy(nodeOf, in.Alloc.Nodes)
				return nodeOf, nil
			}))
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestEnginePortfolioDeadlineBestSoFar: when the deadline cuts off a
// candidate, the portfolio returns the best of what completed and
// marks the loser Skipped instead of failing — and a deadline that
// beats every candidate surfaces the context error.
func TestEnginePortfolioDeadlineBestSoFar(t *testing.T) {
	registerSlowPoll(t)
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	res, err := eng.RunPortfolio(ctx, PortfolioRequest{
		Tasks:      tg,
		Candidates: []Solve{{Mapper: UWH, Seed: 1}, {Mapper: "TEST-SLOWPOLL", Seed: 1}},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 0 || res.Best.Mapper != UWH {
		t.Fatalf("winner = candidate %d (%s), want 0 (UWH)", res.Winner, res.Best.Mapper)
	}
	if res.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", res.Skipped)
	}
	last := res.Leaderboard[len(res.Leaderboard)-1]
	if !last.Skipped || last.Index != 1 || last.Result != nil {
		t.Fatalf("slow candidate's entry malformed: %+v", last)
	}

	// Deadline beating every candidate: the context error surfaces.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := eng.RunPortfolio(dead, PortfolioRequest{
		Tasks:      tg,
		Candidates: []Solve{{Mapper: UWH, Seed: 1}},
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

package topomap

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Parallel-pipeline tests: WithParallelism must change wall-clock
// only, never bytes. These run under `make race` (the -run pattern
// matches Engine), which makes them the proof that the solve's
// forked subtasks touch disjoint state.

// rankfileBytes renders the canonical rankfile of a result — the
// wire-visible artifact the determinism contract is stated over.
func rankfileBytes(t *testing.T, res *MapResult, a *Allocation) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteRankOrder(&sb, res.Placement(), a); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestEngineParallelDeterminism is the tentpole contract: for every
// registered mapper, the same request produces a byte-identical
// rankfile (and placement, and metrics) at workers = 1, 2 and 8.
func TestEngineParallelDeterminism(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		base, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 3,
			Options: []RequestOption{WithParallelism(1)}})
		if err != nil {
			t.Fatalf("%s: serial: %v", mp, err)
		}
		baseRF := rankfileBytes(t, base, a)
		for _, workers := range []int{2, 8} {
			got, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 3,
				Options: []RequestOption{WithParallelism(workers)}})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mp, workers, err)
			}
			if !reflect.DeepEqual(got.GroupOf, base.GroupOf) {
				t.Fatalf("%s workers=%d: GroupOf diverged from workers=1", mp, workers)
			}
			if !reflect.DeepEqual(got.NodeOf, base.NodeOf) {
				t.Fatalf("%s workers=%d: NodeOf diverged from workers=1", mp, workers)
			}
			if got.Metrics != base.Metrics {
				t.Fatalf("%s workers=%d: metrics diverged:\n w1 %+v\n w%d %+v",
					mp, workers, base.Metrics, workers, got.Metrics)
			}
			if rf := rankfileBytes(t, got, a); rf != baseRF {
				t.Fatalf("%s workers=%d: rankfile bytes diverged from workers=1", mp, workers)
			}
		}
	}
}

// TestEngineParallelDefaultMatchesExplicit: a request without the
// option (host default) must still match workers=1 — the default may
// only change speed.
func TestEngineParallelDefaultMatchesExplicit(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 5,
		Options: []RequestOption{WithParallelism(1)}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.NodeOf, serial.NodeOf) || !reflect.DeepEqual(def.GroupOf, serial.GroupOf) {
		t.Fatal("default parallelism diverged from workers=1")
	}
}

// TestEngineParallelHeterogeneous covers the capacity-repair path:
// non-uniform processor counts with parallel workers must reproduce
// the serial placement and still respect every node capacity.
func TestEngineParallelHeterogeneous(t *testing.T) {
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a := &Allocation{
		Nodes:        []int32{3, 40, 77, 101, 130, 171},
		ProcsPerNode: []int{24, 8, 16, 24, 8, 16}, // 96 procs
	}
	procs := a.TotalProcs()
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	capOf := map[int32]int{}
	for i, n := range a.Nodes {
		capOf[n] = a.ProcsPerNode[i]
	}
	for _, mp := range []Mapper{UG, UWH, UMC, UML} {
		base, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1,
			Options: []RequestOption{WithParallelism(1)}})
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		got, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1,
			Options: []RequestOption{WithParallelism(8)}})
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		if !reflect.DeepEqual(got.NodeOf, base.NodeOf) || !reflect.DeepEqual(got.GroupOf, base.GroupOf) {
			t.Fatalf("%s: heterogeneous parallel run diverged from serial", mp)
		}
		perNode := map[int32]int{}
		for _, g := range got.GroupOf {
			perNode[got.NodeOf[g]]++
		}
		for n, cnt := range perNode {
			if cnt > capOf[n] {
				t.Fatalf("%s: node %d hosts %d tasks, capacity %d", mp, n, cnt, capOf[n])
			}
		}
	}
}

// TestEngineInSolveCancellation: with cooperative in-solve polling, a
// deadline far shorter than the solve must surface promptly as the
// context error, not only at the next stage boundary.
func TestEngineInSolveCancellation(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	began := time.Now()
	_, err = eng.RunContext(ctx, Request{Mapper: UMC, Tasks: tg, Seed: 1,
		Options: []RequestOption{WithParallelism(2)}})
	if err == nil {
		t.Fatal("microsecond deadline produced a result")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: the solve itself takes ~10ms serial; a prompt
	// bail must come back well under a full uncancelled solve.
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

package topomap

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Parallel-pipeline tests: WithParallelism must change wall-clock
// only, never bytes. These run under `make race` (the -run pattern
// matches Engine), which makes them the proof that the solve's
// forked subtasks touch disjoint state.

// rankfileBytes renders the canonical rankfile of a result — the
// wire-visible artifact the determinism contract is stated over.
func rankfileBytes(t *testing.T, res *MapResult, a *Allocation) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteRankOrder(&sb, res.Placement(), a); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestEngineParallelDeterminism is the tentpole contract: for every
// registered mapper, the same request produces a byte-identical
// rankfile (and placement, and metrics) at workers = 1, 2 and 8.
func TestEngineParallelDeterminism(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	// The coordinate-requiring mappers (GEOM, SFCM) sweep too, on the
	// same fixture with synthetic coordinates attached — their
	// bisection forks on the same worker pool as everyone else's.
	tgc := withTestCoords(t, tg)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		tasks := tg
		if MapperCapsOf(mp).NeedsCoords {
			tasks = tgc
		}
		base, err := eng.Run(Request{Mapper: mp, Tasks: tasks, Seed: 3,
			Options: []RequestOption{WithParallelism(1)}})
		if err != nil {
			t.Fatalf("%s: serial: %v", mp, err)
		}
		baseRF := rankfileBytes(t, base, a)
		for _, workers := range []int{2, 8} {
			got, err := eng.Run(Request{Mapper: mp, Tasks: tasks, Seed: 3,
				Options: []RequestOption{WithParallelism(workers)}})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mp, workers, err)
			}
			if !reflect.DeepEqual(got.GroupOf, base.GroupOf) {
				t.Fatalf("%s workers=%d: GroupOf diverged from workers=1", mp, workers)
			}
			if !reflect.DeepEqual(got.NodeOf, base.NodeOf) {
				t.Fatalf("%s workers=%d: NodeOf diverged from workers=1", mp, workers)
			}
			if got.Metrics != base.Metrics {
				t.Fatalf("%s workers=%d: metrics diverged:\n w1 %+v\n w%d %+v",
					mp, workers, base.Metrics, workers, got.Metrics)
			}
			if rf := rankfileBytes(t, got, a); rf != baseRF {
				t.Fatalf("%s workers=%d: rankfile bytes diverged from workers=1", mp, workers)
			}
		}
	}
}

// TestRefineMCParallelDeterminism pins the parallel Algorithm 3
// contract through the whole engine pipeline: the congestion-refining
// mappers (UMC on the volume graph, UMMC on the message graph) must
// produce byte-identical rankfiles, placements and metrics at
// workers = 1, 2 and 8 on both a torus and a dragonfly. The instance
// is dense enough (coarse graph of 64 allocated nodes) that candidate
// scoring genuinely fans out rather than taking the gated serial
// path.
func TestRefineMCParallelDeterminism(t *testing.T) {
	tg := ringTaskGraph(1024, 6)

	torusTopo := NewHopperTorus(8, 8, 8)
	ta, err := SparseAllocation(torusTopo, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	dfTopo, err := NewDragonfly(3, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	da, err := DragonflySparseHosts(dfTopo, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	topos := []struct {
		name string
		topo Topology
		a    *Allocation
	}{{"torus", torusTopo, ta}, {"dragonfly", dfTopo, da}}

	for _, tc := range topos {
		eng, err := NewEngine(tc.topo, tc.a)
		if err != nil {
			t.Fatal(err)
		}
		for _, mp := range []Mapper{UMC, UMMC} {
			base, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 7,
				Options: []RequestOption{WithParallelism(1)}})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", tc.name, mp, err)
			}
			baseRF := rankfileBytes(t, base, tc.a)
			for _, workers := range []int{2, 8} {
				got, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 7,
					Options: []RequestOption{WithParallelism(workers)}})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", tc.name, mp, workers, err)
				}
				if !reflect.DeepEqual(got.NodeOf, base.NodeOf) || !reflect.DeepEqual(got.GroupOf, base.GroupOf) {
					t.Fatalf("%s/%s workers=%d: placement diverged from workers=1", tc.name, mp, workers)
				}
				if got.Metrics != base.Metrics {
					t.Fatalf("%s/%s workers=%d: metrics diverged:\n w1 %+v\n w%d %+v",
						tc.name, mp, workers, base.Metrics, workers, got.Metrics)
				}
				if rf := rankfileBytes(t, got, tc.a); rf != baseRF {
					t.Fatalf("%s/%s workers=%d: rankfile bytes diverged", tc.name, mp, workers)
				}
			}
		}
	}
}

// ringTaskGraph builds a ring of n tasks with deg extra deterministic
// chords per vertex — a connected, moderately dense task graph with
// no RNG dependency.
func ringTaskGraph(n, deg int) *TaskGraph {
	var us, vs []int32
	var ws []int64
	add := func(a, b int32, w int64) {
		us = append(us, a, b)
		vs = append(vs, b, a)
		ws = append(ws, w, w)
	}
	for i := 0; i < n; i++ {
		add(int32(i), int32((i+1)%n), 100)
		for d := 0; d < deg; d++ {
			// Deterministic chord pattern: varied strides spread the
			// volume so congestion refinement has real work.
			stride := 2 + (i*7+d*13)%(n/2)
			add(int32(i), int32((i+stride)%n), int64(1+(i+d)%9))
		}
	}
	return &TaskGraph{G: FromEdges(n, us, vs, ws), K: n}
}

// TestRefineMCCancellationMidRefinement: a deadline that lands inside
// the congestion-refinement stage of a UMC solve must surface as the
// context error well before an uncancelled solve would finish.
func TestRefineMCCancellationMidRefinement(t *testing.T) {
	tg := ringTaskGraph(1024, 6)
	topo := NewHopperTorus(8, 8, 8)
	a, err := SparseAllocation(topo, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	// Warm run to measure the instance (and warm the arena).
	if _, err := eng.Run(Request{Mapper: UMC, Tasks: tg, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	began := time.Now()
	_, err = eng.RunContext(ctx, Request{Mapper: UMC, Tasks: tg, Seed: 7,
		Options: []RequestOption{WithParallelism(2)}})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestEngineParallelDefaultMatchesExplicit: a request without the
// option (host default) must still match workers=1 — the default may
// only change speed.
func TestEngineParallelDefaultMatchesExplicit(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 5,
		Options: []RequestOption{WithParallelism(1)}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := eng.Run(Request{Mapper: UWH, Tasks: tg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.NodeOf, serial.NodeOf) || !reflect.DeepEqual(def.GroupOf, serial.GroupOf) {
		t.Fatal("default parallelism diverged from workers=1")
	}
}

// TestEngineParallelHeterogeneous covers the capacity-repair path:
// non-uniform processor counts with parallel workers must reproduce
// the serial placement and still respect every node capacity.
func TestEngineParallelHeterogeneous(t *testing.T) {
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a := &Allocation{
		Nodes:        []int32{3, 40, 77, 101, 130, 171},
		ProcsPerNode: []int{24, 8, 16, 24, 8, 16}, // 96 procs
	}
	procs := a.TotalProcs()
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	capOf := map[int32]int{}
	for i, n := range a.Nodes {
		capOf[n] = a.ProcsPerNode[i]
	}
	for _, mp := range []Mapper{UG, UWH, UMC, UML} {
		base, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1,
			Options: []RequestOption{WithParallelism(1)}})
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		got, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1,
			Options: []RequestOption{WithParallelism(8)}})
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		if !reflect.DeepEqual(got.NodeOf, base.NodeOf) || !reflect.DeepEqual(got.GroupOf, base.GroupOf) {
			t.Fatalf("%s: heterogeneous parallel run diverged from serial", mp)
		}
		perNode := map[int32]int{}
		for _, g := range got.GroupOf {
			perNode[got.NodeOf[g]]++
		}
		for n, cnt := range perNode {
			if cnt > capOf[n] {
				t.Fatalf("%s: node %d hosts %d tasks, capacity %d", mp, n, cnt, capOf[n])
			}
		}
	}
}

// TestEngineInSolveCancellation: with cooperative in-solve polling, a
// deadline far shorter than the solve must surface promptly as the
// context error, not only at the next stage boundary.
func TestEngineInSolveCancellation(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	began := time.Now()
	_, err = eng.RunContext(ctx, Request{Mapper: UMC, Tasks: tg, Seed: 1,
		Options: []RequestOption{WithParallelism(2)}})
	if err == nil {
		t.Fatal("microsecond deadline produced a result")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: the solve itself takes ~10ms serial; a prompt
	// bail must come back well under a full uncancelled solve.
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

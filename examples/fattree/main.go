// Fattree: topology-aware mapping on a k-ary fat tree, the most
// common non-torus interconnect. The paper presents its WH-minimizing
// algorithms as topology-agnostic (§III); this example runs them on a
// k=8 fat tree (128 hosts) with a 2:1 bandwidth taper, compares a
// block placement against UG+UWH and the congestion refinement, and
// evaluates both the static (D-mod-k) and adaptive (ECMP-spread)
// congestion of every mapping.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// A 128-host fat tree with 10 GB/s host links and a 2:1 taper at
	// each level upward (edge-agg 5 GB/s, agg-core 2.5 GB/s).
	ft, err := topomap.NewFatTree(8, 10e9, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fat tree: k=8, %d hosts, %d vertices, %d directed links\n",
		ft.Hosts(), ft.Nodes(), ft.Links())

	// A sparse allocation of 48 hosts on the busy machine.
	a, err := topomap.FatTreeSparseHosts(ft, 48, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Task graph: a 1D row-wise SpMV communication graph of the
	// cagelike matrix, partitioned and grouped to 48 supertasks.
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, a.TotalProcs(), 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, a.TotalProcs())
	if err != nil {
		log.Fatal(err)
	}
	group, coarse, err := topomap.GroupOntoAllocation(tg, a, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Four mappings. On a fat tree the block placement is already a
	// strong baseline (allocation order follows pod locality and
	// recursive-bisection group ids follow the partition order — the
	// same effect the paper reports for Hopper's DEF mapping), so the
	// interesting comparisons are refinements of it: Algorithm 2 run
	// on the block mapping, the full UG+UWH construction, and the
	// ECMP-aware congestion refinement on top of the best WH mapping.
	block := append([]int32(nil), a.Nodes...)

	refined := append([]int32(nil), block...)
	topomap.RefineWH(coarse, ft, a.Nodes, refined)

	uwh := topomap.GreedyMap(coarse, ft, a.Nodes)
	topomap.RefineWH(coarse, ft, a.Nodes, uwh)

	whOf := func(nodeOf []int32) int64 {
		pl := &topomap.Placement{GroupOf: group, NodeOf: nodeOf}
		return topomap.EvaluateMetrics(tg, ft, pl).WH
	}
	best := refined
	if whOf(uwh) < whOf(refined) {
		best = uwh
	}
	ecmp := append([]int32(nil), best...)
	topomap.RefineMCAdaptive(coarse, ft, a.Nodes, ecmp)

	fmt.Printf("\n%-14s %12s %12s %14s %14s\n", "mapping", "WH", "TH", "MC (static)", "EMC (ECMP)")
	show := func(name string, nodeOf []int32) {
		pl := &topomap.Placement{GroupOf: group, NodeOf: nodeOf}
		mm := topomap.EvaluateMetrics(tg, ft, pl)
		am := topomap.EvaluateAdaptiveMetrics(tg, ft, pl)
		fmt.Printf("%-14s %12d %12d %14.4g %14.4g\n", name, mm.WH, mm.TH, mm.MC*1e6, am.EMC*1e6)
	}
	show("block", block)
	show("block+UWH", refined)
	show("UG+UWH", uwh)
	show("best+ECMP", ecmp)
	fmt.Println("\ncongestion columns are microseconds of bottleneck-link transfer time")

	// Algorithm 2 never accepts a worsening swap, so refining the
	// block mapping cannot regress it; the ECMP refinement likewise
	// never raises the expected congestion it optimizes.
	if whOf(refined) > whOf(block) {
		log.Fatalf("refinement regressed WH: %d -> %d", whOf(block), whOf(refined))
	}
	emcOf := func(nodeOf []int32) float64 {
		pl := &topomap.Placement{GroupOf: group, NodeOf: nodeOf}
		return topomap.EvaluateAdaptiveMetrics(tg, ft, pl).EMC
	}
	if emcOf(ecmp) > emcOf(best)*(1+1e-9) {
		log.Fatalf("ECMP refinement regressed EMC: %g -> %g", emcOf(best), emcOf(ecmp))
	}
	fmt.Printf("refining the block mapping improves WH by %.1f%%; "+
		"ECMP refinement improves expected congestion by %.1f%%\n",
		100*(1-float64(whOf(refined))/float64(whOf(block))),
		100*(1-emcOf(ecmp)/emcOf(best)))
}

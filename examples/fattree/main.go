// Fattree: topology-aware mapping on a k-ary fat tree, the most
// common non-torus interconnect. The paper presents its WH-minimizing
// algorithms as topology-agnostic (§III); this example serves a k=8
// fat tree (128 hosts, 2:1 bandwidth taper) through the Engine API —
// the same Requests that run on a torus — then layers the manual
// ECMP-aware congestion refinement on top of the best WH mapping and
// evaluates both the static (D-mod-k) and adaptive (ECMP-spread)
// congestion of every mapping.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// A 128-host fat tree with 10 GB/s host links and a 2:1 taper at
	// each level upward (edge-agg 5 GB/s, agg-core 2.5 GB/s).
	ft, err := topomap.NewFatTree(8, 10e9, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fat tree: k=8, %d hosts, %d vertices, %d directed links\n",
		ft.Hosts(), ft.Nodes(), ft.Links())

	// A sparse allocation of 48 hosts on the busy machine, and the
	// engine serving it: D-mod-k routes between every allocated host
	// pair are precomputed once, shared by all requests below.
	a, err := topomap.FatTreeSparseHosts(ft, 48, 42)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := topomap.NewEngine(ft, a)
	if err != nil {
		log.Fatal(err)
	}

	// Task graph: a 1D row-wise SpMV communication graph of the
	// cagelike matrix, partitioned to one task per processor.
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, a.TotalProcs(), 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, a.TotalProcs())
	if err != nil {
		log.Fatal(err)
	}

	// Three mappings through one engine. On a fat tree the block
	// placement (DEF) is already a strong baseline — allocation order
	// follows pod locality — so the interesting comparisons are
	// refinements of it: DEF polished by Algorithm 2
	// (WithRefinement), the full UG+UWH construction, and below, the
	// ECMP-aware congestion refinement on the best WH mapping.
	results, err := eng.RunBatch([]topomap.Request{
		{Mapper: topomap.DEF, Tasks: tg, Seed: 1},
		{Mapper: topomap.DEF, Tasks: tg, Seed: 1,
			Options: []topomap.RequestOption{topomap.WithRefinement()}},
		{Mapper: topomap.UWH, Tasks: tg, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	block, refined, uwh := results[0], results[1], results[2]

	// The ECMP refinement is the manual layer: copy the best WH
	// mapping and lower its expected congestion over all minimal
	// (agg, core) route choices.
	best := refined
	if uwh.Metrics.WH < refined.Metrics.WH {
		best = uwh
	}
	ecmpNodeOf := append([]int32(nil), best.NodeOf...)
	topomap.RefineMCAdaptive(best.Coarse, ft, a.Nodes, ecmpNodeOf)

	fmt.Printf("\n%-14s %12s %12s %14s %14s\n", "mapping", "WH", "TH", "MC (static)", "EMC (ECMP)")
	show := func(name string, group, nodeOf []int32) topomap.MapMetrics {
		pl := &topomap.Placement{GroupOf: group, NodeOf: nodeOf}
		mm := eng.Evaluate(tg, pl)
		am := topomap.EvaluateAdaptiveMetrics(tg, ft, pl)
		fmt.Printf("%-14s %12d %12d %14.4g %14.4g\n", name, mm.WH, mm.TH, mm.MC*1e6, am.EMC*1e6)
		return mm
	}
	show("block", block.GroupOf, block.NodeOf)
	show("block+UWH", refined.GroupOf, refined.NodeOf)
	show("UG+UWH", uwh.GroupOf, uwh.NodeOf)
	show("best+ECMP", best.GroupOf, ecmpNodeOf)
	fmt.Println("\ncongestion columns are microseconds of bottleneck-link transfer time")

	// Algorithm 2 never accepts a worsening swap, so refining the
	// block mapping cannot regress it; the ECMP refinement likewise
	// never raises the expected congestion it optimizes.
	if refined.Metrics.WH > block.Metrics.WH {
		log.Fatalf("refinement regressed WH: %d -> %d", block.Metrics.WH, refined.Metrics.WH)
	}
	emcOf := func(group, nodeOf []int32) float64 {
		pl := &topomap.Placement{GroupOf: group, NodeOf: nodeOf}
		return topomap.EvaluateAdaptiveMetrics(tg, ft, pl).EMC
	}
	emcBest := emcOf(best.GroupOf, best.NodeOf)
	emcECMP := emcOf(best.GroupOf, ecmpNodeOf)
	if emcECMP > emcBest*(1+1e-9) {
		log.Fatalf("ECMP refinement regressed EMC: %g -> %g", emcBest, emcECMP)
	}
	fmt.Printf("refining the block mapping improves WH by %.1f%%; "+
		"ECMP refinement improves expected congestion by %.1f%%\n",
		100*(1-float64(refined.Metrics.WH)/float64(block.Metrics.WH)),
		100*(1-emcECMP/emcBest))
}

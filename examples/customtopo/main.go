// Customtopo: mapping on a 5D torus (BlueGene/Q-like), showing that
// the WH-minimizing algorithms apply to any topology (§III: "the ones
// that minimize WH can be applied to various topologies").
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// A 5D torus 4x4x4x2x2 with heterogeneous bandwidths.
	topo := topomap.NewTorus(
		[]int{4, 4, 4, 2, 2},
		[]float64{9e9, 9e9, 9e9, 4.5e9, 4.5e9},
	)
	fmt.Printf("5D torus: %d nodes, diameter %d\n", topo.Nodes(), topo.Diameter())

	// A ring-of-cliques task graph: 8 groups of 4 tightly coupled
	// tasks, light ring coupling between groups.
	const groups, size = 8, 4
	var us, vs []int32
	var ws []int64
	add := func(a, b int32, w int64) {
		us = append(us, a, b)
		vs = append(vs, b, a)
		ws = append(ws, w, w)
	}
	for g := 0; g < groups; g++ {
		base := int32(g * size)
		for i := int32(0); i < size; i++ {
			for j := i + 1; j < size; j++ {
				add(base+i, base+j, 50)
			}
		}
		next := int32((g + 1) % groups * size)
		add(base, next, 5)
	}
	coarse := topomap.FromEdges(groups*size, us, vs, ws)

	allocNodes := make([]int32, groups*size)
	for i := range allocNodes {
		// A strided (fragmented) allocation across the 5D machine.
		allocNodes[i] = int32((i * 7) % topo.Nodes())
	}
	seen := map[int32]bool{}
	for i, n := range allocNodes {
		for seen[n] {
			n = (n + 1) % int32(topo.Nodes())
		}
		seen[n] = true
		allocNodes[i] = n
	}

	naive := append([]int32(nil), allocNodes...)
	mapped := topomap.GreedyMap(coarse, topo, allocNodes)
	topomap.RefineWH(coarse, topo, allocNodes, mapped)

	tg := &topomap.TaskGraph{G: coarse, K: groups * size}
	mN := topomap.EvaluateMetrics(tg, topo, &topomap.Placement{NodeOf: naive})
	mU := topomap.EvaluateMetrics(tg, topo, &topomap.Placement{NodeOf: mapped})
	if mU.WH > mN.WH {
		log.Fatalf("mapping regressed WH: %d -> %d", mN.WH, mU.WH)
	}
	fmt.Printf("%-20s %10s %10s\n", "metric", "naive", "UG+UWH")
	fmt.Printf("%-20s %10d %10d\n", "weighted hops", mN.WH, mU.WH)
	fmt.Printf("%-20s %10d %10d\n", "total hops", mN.TH, mU.TH)
	fmt.Printf("%-20s %10.4g %10.4g\n", "max congestion", mN.MC, mU.MC)
	fmt.Printf("improvement: %.1f%% WH\n", 100*(1-float64(mU.WH)/float64(mN.WH)))

	// The same task graph on a dragonfly (Cray Aries class): groups
	// of routers with a full local mesh, one global link per group
	// pair, unique hierarchical minimal routing.
	df, err := topomap.NewDragonfly(2, 10e9, 5e9, 4e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndragonfly: h=2 -> %d groups x %d routers, %d hosts, diameter %d\n",
		df.Groups(), df.RoutersPerGroup(), df.Hosts(), df.Diameter())
	dAlloc, err := topomap.DragonflySparseHosts(df, groups*size, 7)
	if err != nil {
		log.Fatal(err)
	}
	dNaive := append([]int32(nil), dAlloc.Nodes...)
	dMapped := topomap.GreedyMap(coarse, df, dAlloc.Nodes)
	topomap.RefineWH(coarse, df, dAlloc.Nodes, dMapped)
	dN := topomap.EvaluateMetrics(tg, df, &topomap.Placement{NodeOf: dNaive})
	dU := topomap.EvaluateMetrics(tg, df, &topomap.Placement{NodeOf: dMapped})
	if dU.WH > dN.WH {
		log.Fatalf("dragonfly mapping regressed WH: %d -> %d", dN.WH, dU.WH)
	}
	fmt.Printf("%-20s %10s %10s\n", "metric", "block", "UG+UWH")
	fmt.Printf("%-20s %10d %10d\n", "weighted hops", dN.WH, dU.WH)
	fmt.Printf("%-20s %10.4g %10.4g\n", "max congestion", dN.MC, dU.MC)
	fmt.Printf("improvement: %.1f%% WH\n", 100*(1-float64(dU.WH)/float64(dN.WH)))
}

// Rankorder: the MPI integration workflow. A real deployment captures
// the scheduler's node list, maps the application's task graph, and
// hands the runtime a Cray-style MPICH_RANK_ORDER file
// (MPICH_RANK_REORDER_METHOD=3). This example runs that loop
// end-to-end in memory: node list -> mapping -> rank file -> reread ->
// verify the realized placement carries the same metrics.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	topomap "repro"
)

func main() {
	topo := topomap.NewHopperTorus(8, 8, 8)

	// The allocation as captured from the scheduler: 16 scattered
	// nodes with 16 processors each, one "node procs" line per node.
	var sb strings.Builder
	sb.WriteString("# captured from the scheduler\n")
	for _, n := range []int{3, 17, 42, 77, 101, 130, 164, 199, 230, 266, 301, 333, 370, 404, 441, 475} {
		fmt.Fprintf(&sb, "%d 16\n", n)
	}
	a, err := topomap.ReadNodeList(strings.NewReader(sb.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation: %d nodes, %d processors\n", a.NumNodes(), a.TotalProcs())

	// The application: a 256-process SpMV on the cagelike matrix.
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	part, err := topomap.PartitionMatrix(topomap.METIS, m, a.TotalProcs(), 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, a.TotalProcs())
	if err != nil {
		log.Fatal(err)
	}

	// Map with UWH and emit the rank-order file.
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var rankFile bytes.Buffer
	if err := topomap.WriteRankOrder(&rankFile, res.Placement(), a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPICH_RANK_ORDER (%d bytes):\n%s...\n",
		rankFile.Len(), firstLines(rankFile.String(), 3))

	// What the MPI runtime will actually realize from that file:
	order, err := topomap.ReadRankOrder(bytes.NewReader(rankFile.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	realized, err := topomap.PlacementFromRankOrder(order, a)
	if err != nil {
		log.Fatal(err)
	}
	want := topomap.EvaluateMetrics(tg, topo, res.Placement())
	got := topomap.EvaluateMetrics(tg, topo, realized)
	if want != got {
		log.Fatalf("rank file does not carry the mapping faithfully:\n want %+v\n got  %+v", want, got)
	}
	fmt.Printf("realized placement matches the mapping: WH=%d TH=%d MMC=%d MC=%.4g\n",
		got.WH, got.TH, got.MMC, got.MC)

	// For comparison, the metrics of the unreordered (identity) launch.
	identity := make([]int32, a.TotalProcs())
	for i := range identity {
		identity[i] = int32(i)
	}
	defPl, err := topomap.PlacementFromRankOrder(identity, a)
	if err != nil {
		log.Fatal(err)
	}
	def := topomap.EvaluateMetrics(tg, topo, defPl)
	fmt.Printf("without reordering (SMP default):               WH=%d TH=%d MMC=%d MC=%.4g\n",
		def.WH, def.TH, def.MMC, def.MC)
	fmt.Printf("rank reordering improves WH by %.1f%%\n",
		100*(1-float64(got.WH)/float64(def.WH)))
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// Mapd: drive the resident mapping service through its Go client —
// in-process here (no socket; the same client speaks HTTP to a real
// mapd with client.New). The demo maps one job twice on the same
// (topology, allocation) pair to show the engine-cache hit, fans the
// Figure-2 mappers out as a batch, and prints the live /statusz
// counters at the end.
package main

import (
	"context"
	"fmt"
	"log"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	srv := service.New(service.Config{CacheSize: 8})
	c := client.InProcess(srv.Handler())
	ctx := context.Background()

	// A 64-task ring-with-chords job on 4 sparse nodes of an 8x8x8
	// torus.
	tasks := service.TaskGraphSpec{N: 64}
	for i := 0; i < 64; i++ {
		tasks.Edges = append(tasks.Edges,
			[3]int64{int64(i), int64((i + 1) % 64), 10},
			[3]int64{int64(i), int64((i + 32) % 64), 3})
	}
	req := service.MapRequest{
		Topology:   service.TopologySpec{Kind: "torus", Dims: []int{8, 8, 8}},
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      tasks,
		Mapper:     "UWH",
		Seed:       1,
	}

	cold, err := c.Map(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := c.Map(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UWH on torus 8x8x8: WH=%d MC=%.4g nodes=%v\n",
		cold.Metrics.WH, cold.Metrics.MC, cold.AllocNodes)
	fmt.Printf("cold request: cache_hit=%v   repeated request: cache_hit=%v\n\n",
		cold.CacheHit, warm.CacheHit)

	// The Figure-2 sweep as one batch against the shared engine.
	var items []service.BatchItem
	for _, mp := range topomap.Mappers() {
		items = append(items, service.BatchItem{Mapper: string(mp), Seed: 1})
	}
	batch, err := c.MapBatch(ctx, service.BatchRequest{
		Topology:   req.Topology,
		Allocation: req.Allocation,
		Tasks:      tasks,
		Requests:   items,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %8s %12s\n", "mapper", "WH", "MC")
	for _, res := range batch.Results {
		fmt.Printf("%-6s %8d %12.4g\n", res.Mapper, res.Metrics.WH, res.Metrics.MC)
	}

	st, err := c.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatusz: %d map + %d batch requests, cache %d hits / %d misses, p50 %.2fms\n",
		st.Requests, st.BatchRequests, st.CacheHits, st.CacheMisses, st.LatencyP50MS)
}

// Commonly: the communication-only experiment (§IV-C) on the rgg
// stand-in — scaled message sizes make the run bandwidth-bound, so
// the congestion-minimizing UMC mapping shines.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	const (
		procs        = 256
		bytesPerUnit = 262144 // the paper's 256K scale factor for rgg
	)
	m, err := topomap.GenerateMatrix("rgg", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: rgg (%d rows, %d nnz), %d processes, scale 256K\n\n",
		m.Rows, m.NNZ(), procs)

	topo := topomap.NewHopperTorus(8, 8, 8)
	alloc, err := topomap.SparseAllocation(topo, procs/16, 11)
	if err != nil {
		log.Fatal(err)
	}
	// One engine serves both partitioners' sweeps — the routing state
	// depends only on the (topology, allocation) pair.
	eng, err := topomap.NewEngine(topo, alloc)
	if err != nil {
		log.Fatal(err)
	}

	// Compare two partitioners × all mappers, as Figure 4b does.
	for _, p := range []topomap.Partitioner{topomap.PATOH, topomap.UMPAMM} {
		part, err := topomap.PartitionMatrix(p, m, procs, 1)
		if err != nil {
			log.Fatal(err)
		}
		tg, err := topomap.BuildTaskGraph(m, part, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partitioner %s:\n", p)
		fmt.Printf("  %-6s %10s %12s %14s\n", "mapper", "WH", "MC", "comm time (s)")
		var defTime float64
		for _, mapper := range topomap.Mappers() {
			if mapper == topomap.SMAP {
				continue // excluded from Figure 4 in the paper too
			}
			res, err := eng.Run(topomap.Request{Mapper: mapper, Tasks: tg, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			secs := topomap.SimulateCommOnly(tg, topo, res.Placement(), bytesPerUnit,
				topomap.SimParams{Seed: 42})
			if mapper == topomap.DEF {
				defTime = secs
			}
			fmt.Printf("  %-6s %10d %12.4g %10.5f (%.2fx)\n",
				mapper, res.Metrics.WH, res.Metrics.MC, secs, secs/defTime)
		}
		fmt.Println()
	}
}

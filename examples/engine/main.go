// Engine: the topology-generic service API end-to-end. One task
// graph, three networks — a Hopper-like torus, a k-ary fat tree and a
// canonical dragonfly — each served by an Engine that precomputes the
// routing state of its allocation once and then answers mapping
// Requests against it. The exact same Request runs on all three
// (§III: the WH algorithms "can be applied to various topologies"),
// and RunBatch fans the whole Figure-2 mapper sweep out over a worker
// pool with deterministic results.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// Workload: a 1D row-wise SpMV task graph of the cagelike matrix,
	// 64 MPI processes.
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	const procs = 64
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		log.Fatal(err)
	}

	// Three networks, one engine each. Every allocation reserves 4
	// busy-machine hosts × 16 processors = the 64 processes.
	torus := topomap.NewHopperTorus(6, 6, 6)
	torusAlloc, err := topomap.SparseAllocation(torus, procs/16, 42)
	if err != nil {
		log.Fatal(err)
	}
	ft, err := topomap.NewFatTree(8, 10e9, 2)
	if err != nil {
		log.Fatal(err)
	}
	ftAlloc, err := topomap.FatTreeSparseHosts(ft, procs/16, 42)
	if err != nil {
		log.Fatal(err)
	}
	df, err := topomap.NewDragonfly(3, 10e9, 5e9, 4e9)
	if err != nil {
		log.Fatal(err)
	}
	dfAlloc, err := topomap.DragonflySparseHosts(df, procs/16, 42)
	if err != nil {
		log.Fatal(err)
	}

	networks := []struct {
		name  string
		topo  topomap.Topology
		alloc *topomap.Allocation
	}{
		{"torus 6x6x6", torus, torusAlloc},
		{"fat tree k=8", ft, ftAlloc},
		{"dragonfly h=3", df, dfAlloc},
	}

	// The identical batch of requests for every network: the seven
	// Figure-2 mappers.
	var reqs []topomap.Request
	for _, mp := range topomap.Mappers() {
		reqs = append(reqs, topomap.Request{Mapper: mp, Tasks: tg, Seed: 1})
	}

	for _, net := range networks {
		eng, err := topomap.NewEngine(net.topo, net.alloc)
		if err != nil {
			log.Fatal(err)
		}
		results, err := eng.RunBatch(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d tasks on %d nodes)\n", net.name, tg.K, net.alloc.NumNodes())
		fmt.Printf("%-6s %10s %8s %12s\n", "mapper", "WH", "TH", "MC (µs)")
		var defWH, bestWH int64
		for i, res := range results {
			fmt.Printf("%-6s %10d %8d %12.4g\n", res.Mapper, res.Metrics.WH, res.Metrics.TH, res.Metrics.MC*1e6)
			if res.Mapper == topomap.DEF {
				defWH = res.Metrics.WH
			}
			if i == 0 || res.Metrics.WH < bestWH {
				bestWH = res.Metrics.WH
			}
		}
		if bestWH > defWH {
			log.Fatalf("%s: no mapper matched DEF (best WH %d vs %d)", net.name, bestWH, defWH)
		}
		fmt.Printf("best mapper improves WH over DEF by %.1f%%\n",
			100*(1-float64(bestWH)/float64(defWH)))
	}

	fmt.Println("\nsame Request, three topologies — the engine is the only thing that changed")
}

// SpMV: the full paper pipeline on the cage15 stand-in — partition a
// sparse matrix, build the MPI task graph, map it with every
// algorithm, and simulate the SpMV kernel (§IV-D) to see which
// mapping wins.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	const procs = 256
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: cagelike (%d rows, %d nnz), %d MPI processes\n",
		m.Rows, m.NNZ(), procs)

	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		log.Fatal(err)
	}
	pm := tg.PartitionMetrics()
	fmt.Printf("partition: TV=%d TM=%d MSV=%d MSM=%d\n\n", pm.TV, pm.TM, pm.MSV, pm.MSM)

	topo := topomap.NewHopperTorus(8, 8, 8)
	alloc, err := topomap.SparseAllocation(topo, procs/16, 3)
	if err != nil {
		log.Fatal(err)
	}
	// One engine for the allocation; its cached routing state serves
	// every mapper below.
	eng, err := topomap.NewEngine(topo, alloc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %10s %10s %12s %14s\n", "mapper", "TH", "MMC", "MC", "SpMV time (s)")
	var defTime float64
	for _, mapper := range topomap.Mappers() {
		res, err := eng.Run(topomap.Request{Mapper: mapper, Tasks: tg, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		secs := topomap.SimulateSpMV(tg, topo, res.Placement(), 500, topomap.SimParams{Seed: 42})
		if mapper == topomap.DEF {
			defTime = secs
		}
		fmt.Printf("%-6s %10d %10d %12.4g %10.4f (%.2fx)\n",
			mapper, res.Metrics.TH, res.Metrics.MMC, res.Metrics.MC, secs, secs/defTime)
	}
}

// Portfolio: objective-driven mapper selection. Instead of asking for
// an algorithm, the caller declares an outcome — "minimize the
// maximum link congestion on this allocation" — and RunPortfolio
// races every compatible registered mapper toward it, returning the
// winner and a per-candidate leaderboard. The same declarative
// request runs on a torus and on a dragonfly; the point of the demo
// is that the winning mapper is allowed to differ between them, which
// is exactly why a portfolio beats hard-coding one algorithm.
package main

import (
	"context"
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// Workload: a 1D row-wise SpMV task graph of the cagelike matrix,
	// 128 MPI processes on 8 busy-machine hosts × 16 processors.
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	const procs = 128
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		log.Fatal(err)
	}

	torus := topomap.NewHopperTorus(8, 8, 8)
	torusAlloc, err := topomap.SparseAllocation(torus, procs/16, 7)
	if err != nil {
		log.Fatal(err)
	}
	dfly, err := topomap.NewDragonfly(3, 10e9, 5e9, 4e9)
	if err != nil {
		log.Fatal(err)
	}
	dflyAlloc, err := topomap.DragonflySparseHosts(dfly, procs/16, 7)
	if err != nil {
		log.Fatal(err)
	}

	// One declarative request: minimize the maximum volume congestion.
	// Candidates are left empty, so each engine expands the portfolio
	// to every registered mapper its topology can dispatch.
	req := topomap.PortfolioRequest{
		Tasks:     tg,
		Seed:      1,
		Objective: topomap.MinimizeMetric("mc"),
	}

	for _, tc := range []struct {
		name  string
		topo  topomap.Topology
		alloc *topomap.Allocation
	}{
		{"torus 8x8x8", torus, torusAlloc},
		{"dragonfly h=3", dfly, dflyAlloc},
	} {
		eng, err := topomap.NewEngine(tc.topo, tc.alloc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.RunPortfolio(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — objective %s, %d candidates\n", tc.name, req.Objective, len(res.Leaderboard))
		for rank, entry := range res.Leaderboard {
			fmt.Printf("  #%d %-5s score %.6g  (WH %d, MC %.4g)\n",
				rank+1, entry.Solve.Mapper, entry.Score,
				entry.Result.Metrics.WH, entry.Result.Metrics.MC)
		}
		fmt.Printf("  winner: %s\n\n", res.Best.Mapper)
	}
}

// Quickstart: map a hand-authored task graph onto a torus and watch
// each stage of the paper's pipeline — greedy construction
// (Algorithm 1), WH refinement (Algorithm 2) and congestion
// refinement (Algorithm 3) — move the mapping metrics.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// A 6x6 halo-exchange application: 36 tasks on a grid, each
	// exchanging 100 units with its grid neighbours.
	const side = 6
	var us, vs []int32
	var ws []int64
	id := func(r, c int) int32 { return int32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				us = append(us, id(r, c), id(r, c+1))
				vs = append(vs, id(r, c+1), id(r, c))
				ws = append(ws, 100, 100)
			}
			if r+1 < side {
				us = append(us, id(r, c), id(r+1, c))
				vs = append(vs, id(r+1, c), id(r, c))
				ws = append(ws, 100, 100)
			}
		}
	}
	coarse := topomap.FromEdges(side*side, us, vs, ws)
	tg := &topomap.TaskGraph{G: coarse, K: side * side}

	// A 6x6x6 torus with a sparse 36-node allocation, one task per node.
	topo := topomap.NewHopperTorus(6, 6, 6)
	alloc, err := topomap.SparseAllocation(topo, side*side, 7)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, nodeOf []int32) {
		m := topomap.EvaluateMetrics(tg, topo, &topomap.Placement{NodeOf: nodeOf})
		fmt.Printf("%-12s WH=%-7d TH=%-5d MMC=%-4d MC=%.4g\n",
			name, m.WH, m.TH, m.MMC, m.MC)
	}

	fmt.Println("6x6 halo exchange on a 6x6x6 torus, 36 sparse nodes")

	// Default placement: task i on the i-th allocated node.
	def := make([]int32, side*side)
	copy(def, alloc.Nodes)
	show("DEF", def)

	// Stage 1: greedy construction (UG).
	ug := topomap.GreedyMap(coarse, topo, alloc.Nodes)
	show("UG", ug)

	// Stage 2: WH refinement on top (UWH).
	uwh := append([]int32(nil), ug...)
	gain := topomap.RefineWH(coarse, topo, alloc.Nodes, uwh)
	show("UWH", uwh)

	// Stage 3 (alternative): congestion refinement on top of UG (UMC)
	// — trades a little WH for the best max congestion.
	umc := append([]int32(nil), ug...)
	swaps := topomap.RefineMC(coarse, topo, alloc.Nodes, umc)
	show("UMC", umc)

	fmt.Printf("\nWH refinement gained %d weighted hops; MC refinement made %d swaps\n",
		gain, swaps)
}

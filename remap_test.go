package topomap

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// Incremental remapping tests: AllocationDelta semantics, fault
// scenarios (node death, rack growth, capacity shrink), route-cache
// reuse, the quality fence, and worker-count determinism (the last
// runs under `make race`).

// remapFixture builds an engine with capacity headroom — 96 tasks on
// 8×16 = 128 slots — so removal deltas stay feasible, plus a finished
// prev mapping to remap from.
func remapFixture(t *testing.T) (*Engine, *TaskGraph, *MapResult) {
	t.Helper()
	tg := ringTaskGraph(96, 4)
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := eng.RunSolve(context.Background(), tg, Solve{Mapper: UWH, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return eng, tg, prev
}

// checkRemapPlacement verifies the result is a complete feasible
// placement on the post-delta allocation.
func checkRemapPlacement(t *testing.T, res *RemapResult, tg *TaskGraph) {
	t.Helper()
	a := res.Allocation
	if len(res.Result.GroupOf) != tg.K || len(res.Result.NodeOf) != a.NumNodes() {
		t.Fatalf("placement shape: %d tasks / %d groups, want %d / %d",
			len(res.Result.GroupOf), len(res.Result.NodeOf), tg.K, a.NumNodes())
	}
	load := make([]int, a.NumNodes())
	for tk, g := range res.Result.GroupOf {
		if g < 0 || int(g) >= a.NumNodes() {
			t.Fatalf("task %d has group %d out of range", tk, g)
		}
		load[g]++
	}
	onNode := map[int32]bool{}
	for _, m := range a.Nodes {
		onNode[m] = true
	}
	used := map[int32]bool{}
	for g, m := range res.Result.NodeOf {
		if !onNode[m] {
			t.Fatalf("group %d assigned to node %d outside the allocation", g, m)
		}
		if used[m] {
			t.Fatalf("node %d assigned twice", m)
		}
		used[m] = true
		if load[g] > a.ProcsPerNode[g] {
			t.Fatalf("group %d holds %d tasks, capacity %d", g, load[g], a.ProcsPerNode[g])
		}
	}
}

func TestAllocationDeltaApply(t *testing.T) {
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n0, n1, n2, n3 := a.Nodes[0], a.Nodes[1], a.Nodes[2], a.Nodes[3]
	var free []int32 // nodes outside the allocation
	in := map[int32]bool{n0: true, n1: true, n2: true, n3: true}
	for m := int32(0); len(free) < 2; m++ {
		if !in[m] {
			free = append(free, m)
		}
	}

	t.Run("node death keeps order", func(t *testing.T) {
		next, err := AllocationDelta{Remove: []int32{n1}}.Apply(topo, a)
		if err != nil {
			t.Fatal(err)
		}
		want := []int32{n0, n2, n3}
		if len(next.Nodes) != 3 || next.Nodes[0] != want[0] || next.Nodes[1] != want[1] || next.Nodes[2] != want[2] {
			t.Fatalf("nodes = %v, want %v", next.Nodes, want)
		}
	})
	t.Run("growth appends in add order", func(t *testing.T) {
		next, err := AllocationDelta{Add: []NodeCapacity{{free[0], 16}, {free[1], 8}}}.Apply(topo, a)
		if err != nil {
			t.Fatal(err)
		}
		if next.NumNodes() != 6 || next.Nodes[4] != free[0] || next.Nodes[5] != free[1] {
			t.Fatalf("nodes = %v, want %v appended", next.Nodes, free)
		}
		if next.ProcsPerNode[5] != 8 {
			t.Fatalf("added capacity = %d, want 8", next.ProcsPerNode[5])
		}
	})
	t.Run("capacity zero removes", func(t *testing.T) {
		next, err := AllocationDelta{SetCapacity: []NodeCapacity{{n2, 0}, {n0, 4}}}.Apply(topo, a)
		if err != nil {
			t.Fatal(err)
		}
		if next.NumNodes() != 3 || next.ProcsPerNode[0] != 4 {
			t.Fatalf("nodes = %v procs = %v", next.Nodes, next.ProcsPerNode)
		}
		for _, m := range next.Nodes {
			if m == n2 {
				t.Fatal("zero-capacity node survived")
			}
		}
	})
	t.Run("errors", func(t *testing.T) {
		cases := []struct {
			name string
			d    AllocationDelta
			want string
		}{
			{"empty delta", AllocationDelta{}, "empty allocation delta"},
			{"empties allocation", AllocationDelta{Remove: []int32{n0, n1, n2, n3}}, "empties the allocation"},
			{"remove unallocated", AllocationDelta{Remove: []int32{free[0]}}, "not allocated"},
			{"add allocated", AllocationDelta{Add: []NodeCapacity{{n0, 16}}}, "already allocated"},
			{"add outside topology", AllocationDelta{Add: []NodeCapacity{{9999, 16}}}, "outside the topology"},
			{"add zero capacity", AllocationDelta{Add: []NodeCapacity{{free[0], 0}}}, "capacity 0"},
			{"negative capacity", AllocationDelta{SetCapacity: []NodeCapacity{{n0, -1}}}, "negative capacity"},
			{"named twice", AllocationDelta{Remove: []int32{n0}, SetCapacity: []NodeCapacity{{n0, 4}}}, "twice"},
		}
		for _, tc := range cases {
			_, err := tc.d.Apply(topo, a)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
			}
		}
	})
}

// TestRemapSingleNodeDeath is the acceptance scenario: a 1-node
// removal must reuse >= 90%% of the route-cache pairs, migrate only
// the dead node's tasks, and produce a feasible placement.
func TestRemapSingleNodeDeath(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	dead := eng.Allocation().Nodes[2]
	var deadTasks int
	for _, g := range prev.GroupOf {
		if prev.NodeOf[g] == dead {
			deadTasks++
		}
	}
	res, err := eng.Remap(context.Background(), tg, prev, AllocationDelta{Remove: []int32{dead}})
	if err != nil {
		t.Fatal(err)
	}
	checkRemapPlacement(t, res, tg)
	if res.Allocation.NumNodes() != 7 {
		t.Fatalf("allocation has %d nodes, want 7", res.Allocation.NumNodes())
	}
	if res.MigratedTasks != deadTasks {
		t.Fatalf("migrated %d tasks, want the dead node's %d", res.MigratedTasks, deadTasks)
	}
	if res.PairsTotal == 0 || float64(res.PairsReused) < 0.9*float64(res.PairsTotal) {
		t.Fatalf("route-cache reuse %d/%d below 90%%", res.PairsReused, res.PairsTotal)
	}
	// Pure removal: every surviving pair was already tabulated.
	if res.PairsReused != res.PairsTotal {
		t.Fatalf("node removal should reuse all %d pairs, reused %d", res.PairsTotal, res.PairsReused)
	}
	// The returned engine serves the new allocation.
	if res.Engine.Allocation().NumNodes() != 7 {
		t.Fatal("returned engine not on the post-delta allocation")
	}
	if _, err := res.Engine.RunSolve(context.Background(), tg, Solve{Mapper: UWH, Seed: 3}); err != nil {
		t.Fatalf("post-delta engine cannot solve: %v", err)
	}
}

func TestRemapRackGrowth(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	in := map[int32]bool{}
	for _, m := range eng.Allocation().Nodes {
		in[m] = true
	}
	var grow []NodeCapacity
	for m := int32(0); len(grow) < 2; m++ {
		if !in[m] {
			grow = append(grow, NodeCapacity{Node: m, Procs: 16})
		}
	}
	res, err := eng.Remap(context.Background(), tg, prev, AllocationDelta{Add: grow})
	if err != nil {
		t.Fatal(err)
	}
	checkRemapPlacement(t, res, tg)
	if res.Allocation.NumNodes() != 10 {
		t.Fatalf("allocation has %d nodes, want 10", res.Allocation.NumNodes())
	}
	// Growth strands nobody; the old pairs all survive, the new
	// node's pairs are the only recomputation.
	if res.MigratedTasks != 0 {
		t.Fatalf("growth migrated %d tasks, want 0", res.MigratedTasks)
	}
	oldPairs := 8*8 - 8
	if res.PairsReused != oldPairs {
		t.Fatalf("reused %d pairs, want all %d pre-delta pairs", res.PairsReused, oldPairs)
	}
}

func TestRemapCapacityShrink(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	a := eng.Allocation()
	shrunk := a.Nodes[0]
	var onNode int
	for _, g := range prev.GroupOf {
		if prev.NodeOf[g] == shrunk {
			onNode++
		}
	}
	if onNode < 3 {
		t.Fatalf("fixture: node %d holds %d tasks, need >= 3", shrunk, onNode)
	}
	keep := onNode - 2 // force exactly 2 evictions
	res, err := eng.Remap(context.Background(), tg, prev, AllocationDelta{
		SetCapacity: []NodeCapacity{{shrunk, keep}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRemapPlacement(t, res, tg)
	if res.Allocation.NumNodes() != 8 {
		t.Fatalf("allocation has %d nodes, want 8 (shrink keeps the node)", res.Allocation.NumNodes())
	}
	if res.MigratedTasks != 2 {
		t.Fatalf("migrated %d tasks, want the 2 evictions", res.MigratedTasks)
	}
	// Capacity-only delta: the node set is unchanged, every pair
	// survives.
	if res.PairsReused != res.PairsTotal {
		t.Fatalf("capacity shrink should reuse all %d pairs, reused %d", res.PairsTotal, res.PairsReused)
	}

	// Shrink to zero behaves exactly like removal.
	res0, err := eng.Remap(context.Background(), tg, prev, AllocationDelta{
		SetCapacity: []NodeCapacity{{shrunk, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRemapPlacement(t, res0, tg)
	if res0.Allocation.NumNodes() != 7 {
		t.Fatalf("zero-capacity shrink left %d nodes, want 7", res0.Allocation.NumNodes())
	}
	if res0.MigratedTasks != onNode {
		t.Fatalf("migrated %d, want all %d tasks of the zeroed node", res0.MigratedTasks, onNode)
	}
}

func TestRemapEmptyingDeltaRejected(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	_, err := eng.Remap(context.Background(), tg, prev, AllocationDelta{
		Remove: append([]int32(nil), eng.Allocation().Nodes...),
	})
	if err == nil || !strings.Contains(err.Error(), "empties the allocation") {
		t.Fatalf("err = %v, want empties-the-allocation rejection", err)
	}
	// Infeasible (but non-empty) deltas are rejected before any work.
	nodes := eng.Allocation().Nodes
	_, err = eng.Remap(context.Background(), tg, prev, AllocationDelta{
		Remove: append([]int32(nil), nodes[:len(nodes)-1]...),
	})
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("err = %v, want capacity-exceeded rejection", err)
	}
}

// TestRemapFenceThreshold proves the fence triggers exactly at the
// configured threshold: with the threshold set just above the warm
// path's actual regression the fallback must not run, just below it
// the fallback must run — and the winner is whichever scored lower.
func TestRemapFenceThreshold(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	delta := AllocationDelta{Remove: []int32{eng.Allocation().Nodes[2]}}

	// Measure the warm path with the fence disabled.
	free, err := eng.Remap(context.Background(), tg, prev, delta, WithFenceThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	if free.FenceTripped || !free.Warm {
		t.Fatalf("disabled fence tripped: %+v", free)
	}
	if free.PrevScore <= 0 || free.WarmScore <= 0 {
		t.Fatalf("scores not populated: prev %g warm %g", free.PrevScore, free.WarmScore)
	}
	regression := free.WarmScore/free.PrevScore - 1
	if regression <= 0 {
		t.Skipf("warm path improved on prev (regression %g); fence exactness needs a regressing instance", regression)
	}

	// Threshold just above the regression: warm result accepted as is.
	above, err := eng.Remap(context.Background(), tg, prev, delta, WithFenceThreshold(regression*1.01))
	if err != nil {
		t.Fatal(err)
	}
	if above.FenceTripped {
		t.Fatalf("fence tripped at threshold %g > regression %g", regression*1.01, regression)
	}
	if !above.Warm || above.WarmScore != free.WarmScore {
		t.Fatalf("warm result changed under a higher threshold: %+v", above)
	}

	// Threshold just below: the cold fallback must run, and the
	// winner is the lower score.
	below, err := eng.Remap(context.Background(), tg, prev, delta, WithFenceThreshold(regression*0.99))
	if err != nil {
		t.Fatal(err)
	}
	if !below.FenceTripped {
		t.Fatalf("fence did not trip at threshold %g < regression %g", regression*0.99, regression)
	}
	if below.ColdScore <= 0 {
		t.Fatalf("cold fallback did not report a score: %+v", below)
	}
	wantWarm := free.WarmScore <= below.ColdScore
	if below.Warm != wantWarm {
		t.Fatalf("winner = warm:%v, want warm:%v (warm %g cold %g)", below.Warm, wantWarm, free.WarmScore, below.ColdScore)
	}
	best := below.ColdScore
	if wantWarm {
		best = free.WarmScore
	}
	if got, err := MinimizeMetric("wh").Score(below.Result); err != nil || got != best {
		t.Fatalf("reported result scores %g (err %v), want the winner's %g", got, err, best)
	}
}

// TestRemapDeterministicWorkers is the determinism acceptance: the
// remap output — placement, metrics and fence accounting — is
// byte-identical at workers 1, 2 and 8. Runs under `make race`.
func TestRemapDeterministicWorkers(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	delta := AllocationDelta{Remove: []int32{eng.Allocation().Nodes[2]}}
	run := func(workers int) *RemapResult {
		res, err := eng.Remap(context.Background(), tg, prev, delta,
			WithRemapSolve(Solve{Workers: workers}),
			WithRemapObjective(MinimizeMetric("mc")))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.Warm != base.Warm || got.FenceTripped != base.FenceTripped ||
			got.WarmScore != base.WarmScore || got.ColdScore != base.ColdScore ||
			got.MigratedTasks != base.MigratedTasks || got.PairsReused != base.PairsReused {
			t.Fatalf("workers=%d: remap accounting diverged:\n w1 %+v\n w%d %+v", workers, base, workers, got)
		}
		if got.Result.Metrics != base.Result.Metrics {
			t.Fatalf("workers=%d: metrics diverged", workers)
		}
		if !reflect.DeepEqual(got.Result.GroupOf, base.Result.GroupOf) ||
			!reflect.DeepEqual(got.Result.NodeOf, base.Result.NodeOf) {
			t.Fatalf("workers=%d: placement bytes diverged", workers)
		}
	}
}

func TestRemapValidation(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	delta := AllocationDelta{Remove: []int32{eng.Allocation().Nodes[0]}}
	if _, err := eng.Remap(context.Background(), nil, prev, delta); err == nil {
		t.Fatal("nil task graph accepted")
	}
	if _, err := eng.Remap(context.Background(), tg, nil, delta); err == nil {
		t.Fatal("nil previous result accepted")
	}
	bad := &MapResult{Mapper: UWH, GroupOf: prev.GroupOf[:10], NodeOf: prev.NodeOf}
	if _, err := eng.Remap(context.Background(), tg, bad, delta); err == nil {
		t.Fatal("mismatched GroupOf length accepted")
	}
	if _, err := eng.Remap(context.Background(), tg, prev, delta,
		WithRemapSolve(Solve{TimeoutMS: -1})); err == nil {
		t.Fatal("negative timeout accepted")
	}
	if _, err := eng.Remap(context.Background(), tg, prev, delta,
		WithRemapObjective(Objective{Minimize: "nope"})); err == nil {
		t.Fatal("unknown objective metric accepted")
	}
}

package topomap

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hetero"
)

// Heterogeneous-processor subsystem tests: the homogeneous degeneracy
// (explicit unit loads and speeds lower to the exact code paths of
// their absent spellings), worker-count determinism of the balance
// stage and the HET mapper, and the makespan win of the hetero-aware
// path over a hetero-blind winner on the skewed mlpipe workload.

// unitLoadGraph returns tg with its load vector replaced (nil strips
// loads; a slice installs them) without touching the shared CSR.
func withLoads(tg *TaskGraph, vw []int64) *TaskGraph {
	g := *tg.G
	g.VW = vw
	return &TaskGraph{G: &g, K: tg.K}
}

// TestSolveHomogeneousDegeneracy pins the canonicalization invariant
// at the engine: a graph spelling out all-unit loads and an allocation
// spelling out all-unit speeds must produce byte-identical rankfiles
// and metrics to the absent spellings, for every registered mapper.
func TestSolveHomogeneousDegeneracy(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	base := withLoads(tg, nil)
	ones := make([]int64, tg.G.N())
	for i := range ones {
		ones[i] = 1
	}
	spelled := withLoads(tg, ones)
	aUnit := *a
	aUnit.Speeds = make([]float64, len(a.Nodes))
	for i := range aUnit.Speeds {
		aUnit.Speeds[i] = 1
	}

	engBase, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	engUnit, err := NewEngine(topo, &aUnit)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue
		}
		if MapperCapsOf(mp).NeedsCoords {
			continue // coordinate-free fixture; see TestSolveCoordinateDegeneracy
		}
		want, err := engBase.Run(Request{Mapper: mp, Tasks: base, Seed: 1})
		if err != nil {
			t.Fatalf("%s: baseline: %v", mp, err)
		}
		got, err := engUnit.Run(Request{Mapper: mp, Tasks: spelled, Seed: 1})
		if err != nil {
			t.Fatalf("%s: unit-spelled: %v", mp, err)
		}
		if !reflect.DeepEqual(got.GroupOf, want.GroupOf) || !reflect.DeepEqual(got.NodeOf, want.NodeOf) {
			t.Fatalf("%s: placement diverged between absent and unit-spelled loads/speeds", mp)
		}
		if got.Metrics != want.Metrics {
			t.Fatalf("%s: metrics diverged:\n absent %+v\n spelled %+v", mp, want.Metrics, got.Metrics)
		}
		wantRank := new(strings.Builder)
		gotRank := new(strings.Builder)
		if err := WriteRankOrder(wantRank, want.Placement(), a); err != nil {
			t.Fatal(err)
		}
		if err := WriteRankOrder(gotRank, got.Placement(), &aUnit); err != nil {
			t.Fatal(err)
		}
		if gotRank.String() != wantRank.String() {
			t.Fatalf("%s: rankfile diverged between absent and unit-spelled loads/speeds", mp)
		}
	}
}

// heteroFixture builds the skewed heterogeneous instance the
// determinism and makespan tests share: an mlpipe task graph (skewed
// loads baked in) on a sparse torus allocation where a third of the
// nodes are 4x accelerators.
func heteroFixture(t *testing.T, stages, width int) (*TaskGraph, *Torus, *Allocation) {
	t.Helper()
	tg, err := MLPipe(stages, width, 3)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(8, 8, 8)
	a, err := SparseAllocation(topo, (tg.K+15)/16, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Speeds = make([]float64, len(a.Nodes))
	for i := range a.Speeds {
		a.Speeds[i] = 1
		if i%3 == 0 {
			a.Speeds[i] = 4
		}
	}
	return tg, topo, a
}

// TestSolveHeteroWorkerDeterminism: the balance stage and the HET
// mapper are byte-identical at any worker count.
func TestSolveHeteroWorkerDeterminism(t *testing.T) {
	tg, topo, a := heteroFixture(t, 16, 16)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range []Mapper{HET, UWH} {
		var want *MapResult
		for _, workers := range []int{1, 2, 8} {
			res, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1,
				Options: []RequestOption{WithParallelism(workers), WithBalance()}})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mp, workers, err)
			}
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(res.GroupOf, want.GroupOf) || !reflect.DeepEqual(res.NodeOf, want.NodeOf) {
				t.Fatalf("%s: placement diverged at workers=%d", mp, workers)
			}
			if res.Metrics != want.Metrics {
				t.Fatalf("%s: metrics diverged at workers=%d:\n %+v\n vs %+v", mp, workers, want.Metrics, res.Metrics)
			}
		}
		if want.Metrics.Makespan <= 0 {
			t.Fatalf("%s: heterogeneous solve reported makespan %g", mp, want.Metrics.Makespan)
		}
	}
}

// TestSolveHeteroBeatsBlindMakespan is the subsystem's reason to
// exist: on the skewed mlpipe workload, the hetero-aware path (HET
// construction + balance stage, loads and speeds visible) must finish
// strictly earlier than the best placement any mapper finds while
// blind to loads and speeds.
func TestSolveHeteroBeatsBlindMakespan(t *testing.T) {
	tg, topo, a := heteroFixture(t, 24, 16)

	// Blind pass: unit loads, unit speeds — the pre-heterogeneity
	// engine. Score each winner's placement under the TRUE loads and
	// speeds afterwards.
	aBlind := *a
	aBlind.Speeds = nil
	engBlind, err := NewEngine(topo, &aBlind)
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]float64, topo.Nodes())
	for i, n := range a.Nodes {
		dense[n] = a.Speeds[i]
	}
	blind := 0.0
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue
		}
		if MapperCapsOf(mp).NeedsCoords {
			continue // the mlpipe workload carries no coordinates
		}
		res, err := engBlind.Run(Request{Mapper: mp, Tasks: withLoads(tg, nil), Seed: 1})
		if err != nil {
			t.Fatalf("%s: blind: %v", mp, err)
		}
		ms, _ := hetero.Summary(tg.G, res.GroupOf, res.NodeOf, dense)
		if blind == 0 || ms < blind {
			blind = ms
		}
	}

	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(Request{Mapper: HET, Tasks: tg, Seed: 1,
		Options: []RequestOption{WithBalance()}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Makespan >= blind {
		t.Fatalf("hetero-aware makespan %g did not beat the best blind makespan %g", res.Metrics.Makespan, blind)
	}
}

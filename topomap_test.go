package topomap

import (
	"bytes"
	"testing"
)

// Public-API tests: the full pipeline through the facade, exactly as
// a downstream user would drive it.

func TestFullPipeline(t *testing.T) {
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 128
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, procs/16, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := map[Mapper]*MapResult{}
	for _, mp := range Mappers() {
		res, err := RunMapping(mp, tg, topo, a, 1)
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		if len(res.GroupOf) != procs || len(res.NodeOf) != a.NumNodes() {
			t.Fatalf("%s: result shapes wrong", mp)
		}
		if res.Metrics.WH <= 0 || res.Metrics.TH <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", mp, res.Metrics)
		}
		results[mp] = res
	}
	// Simulation must run for every mapping.
	for mp, res := range results {
		secs := SimulateSpMV(tg, topo, res.Placement(), 10, SimParams{Seed: 1})
		if secs <= 0 {
			t.Fatalf("%s: simulated time %g", mp, secs)
		}
		c := SimulateCommOnly(tg, topo, res.Placement(), 4096, SimParams{Seed: 1})
		if c <= 0 {
			t.Fatalf("%s: simulated comm time %g", mp, c)
		}
	}
}

func TestRunMappingErrors(t *testing.T) {
	m, err := GenerateMatrix("mesh2d-a", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionMatrix(METIS, m, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, 64)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(4, 4, 4)
	a, err := SparseAllocation(topo, 2, 1) // 32 procs < 64 tasks
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMapping(UG, tg, topo, a, 1); err == nil {
		t.Fatal("want error when tasks exceed allocated processors")
	}
	a4, err := SparseAllocation(topo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMapping(Mapper("NOPE"), tg, topo, a4, 1); err == nil {
		t.Fatal("want error for unknown mapper")
	}
}

func TestDirectAlgorithmAPI(t *testing.T) {
	coarse := FromEdges(8,
		[]int32{0, 1, 2, 3, 4, 5, 6, 7},
		[]int32{1, 2, 3, 4, 5, 6, 7, 0},
		[]int64{5, 5, 5, 5, 5, 5, 5, 5})
	topo := NewHopperTorus(4, 4, 4)
	a, err := ContiguousAllocation(topo, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := GreedyMap(coarse, topo, a.Nodes)
	if len(nodeOf) != 8 {
		t.Fatal("GreedyMap shape wrong")
	}
	gain := RefineWH(coarse, topo, a.Nodes, nodeOf)
	if gain < 0 {
		t.Fatalf("negative WH gain %d", gain)
	}
	if swaps := RefineMC(coarse, topo, a.Nodes, nodeOf); swaps < 0 {
		t.Fatal("negative swap count")
	}
	if swaps := RefineMMC(coarse, topo, a.Nodes, nodeOf); swaps < 0 {
		t.Fatal("negative swap count")
	}
}

func TestDatasetAccessors(t *testing.T) {
	names := DatasetNames()
	if len(names) != 25 {
		t.Fatalf("dataset has %d names", len(names))
	}
	if _, err := GenerateMatrix("does-not-exist", Tiny); err == nil {
		t.Fatal("want error for unknown matrix")
	}
	if len(Partitioners()) != 7 {
		t.Fatal("expected 7 partitioner personalities")
	}
	if len(Mappers()) != 7 {
		t.Fatal("expected 7 mappers")
	}
}

func TestUWHImprovesOverDEFOnScatteredAlloc(t *testing.T) {
	// The headline claim at test scale: on a poor (scattered-ish)
	// sparse allocation, UWH beats DEF on WH.
	m, err := GenerateMatrix("mesh3d-a", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 256
	part, err := PartitionMatrix(PATOH, m, procs, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(8, 8, 8)
	a, err := SparseAllocation(topo, procs/16, 5)
	if err != nil {
		t.Fatal(err)
	}
	def, err := RunMapping(DEF, tg, topo, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	uwh, err := RunMapping(UWH, tg, topo, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if uwh.Metrics.WH >= def.Metrics.WH {
		t.Fatalf("UWH WH %d not better than DEF %d", uwh.Metrics.WH, def.Metrics.WH)
	}
}

func TestExtraMappers(t *testing.T) {
	m, err := GenerateMatrix("social-b", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 64
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, procs/16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range []Mapper{UTH, TMAPG, UML, UMCA} {
		res, err := RunMapping(mp, tg, topo, a, 1)
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		if res.Metrics.WH <= 0 {
			t.Fatalf("%s: degenerate WH", mp)
		}
	}
}

func TestHeterogeneousCapacities(t *testing.T) {
	// Non-uniform processors per node (§III-A and §IV-B: 24 cores per
	// node do not divide power-of-two process counts, so real
	// allocations are non-uniform). The pipeline must respect every
	// node's capacity.
	m, err := GenerateMatrix("cagelike", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a := &Allocation{
		Nodes:        []int32{3, 40, 77, 101, 130, 171},
		ProcsPerNode: []int{24, 8, 16, 24, 8, 16}, // 96 procs
	}
	procs := a.TotalProcs()
	part, err := PartitionMatrix(PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range []Mapper{DEF, UG, UWH, UMC} {
		res, err := RunMapping(mp, tg, topo, a, 1)
		if err != nil {
			t.Fatalf("%s: %v", mp, err)
		}
		// Count tasks per node and check capacities.
		capOf := map[int32]int{}
		for i, n := range a.Nodes {
			capOf[n] = a.ProcsPerNode[i]
		}
		perNode := map[int32]int{}
		for _, g := range res.GroupOf {
			perNode[res.NodeOf[g]]++
		}
		for n, cnt := range perNode {
			c, ok := capOf[n]
			if !ok {
				t.Fatalf("%s: tasks on unallocated node %d", mp, n)
			}
			if cnt > c {
				t.Fatalf("%s: node %d hosts %d tasks, capacity %d", mp, n, cnt, c)
			}
		}
		if res.Metrics.WH <= 0 {
			t.Fatalf("%s: degenerate WH", mp)
		}
	}
}

func TestRankOrderThroughPublicAPI(t *testing.T) {
	m, err := GenerateMatrix("mesh2d-a", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	procs := a.TotalProcs()
	part, err := PartitionMatrix(METIS, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMapping(UWH, tg, topo, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRankOrder(&buf, res.Placement(), a); err != nil {
		t.Fatal(err)
	}
	order, err := ReadRankOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	realized, err := PlacementFromRankOrder(order, a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := EvaluateMetrics(tg, topo, realized), res.Metrics; got != want {
		t.Fatalf("rank file altered the metrics:\n want %+v\n got  %+v", want, got)
	}
}

func TestMeshTopologyPipeline(t *testing.T) {
	// The whole pipeline must work on a mesh network too.
	m, err := GenerateMatrix("mesh2d-a", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 64
	part, err := PartitionMatrix(METIS, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewTorusMesh([]int{6, 6, 6}, []float64{9e9, 4.5e9, 9e9})
	a, err := SparseAllocation(topo, procs/16, 2)
	if err != nil {
		t.Fatal(err)
	}
	def, err := RunMapping(DEF, tg, topo, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	uwh, err := RunMapping(UWH, tg, topo, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if uwh.Metrics.WH > def.Metrics.WH {
		t.Fatalf("mesh: UWH WH %d worse than DEF %d", uwh.Metrics.WH, def.Metrics.WH)
	}
}

package topomap

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// SimSecondsMetric is the objective metric name scoring the simulated
// communication time of a solve (MapResult.SimSeconds). Unlike the
// MapMetrics names it requires every scored candidate to carry a
// SimSpec; portfolio validation enforces that up front.
const SimSecondsMetric = "sim_seconds"

// Objective declares the outcome a caller wants minimized — the
// declarative counterpart of picking an algorithm by hand. Either a
// single metric by canonical name (Minimize) or a weighted
// combination (Terms); setting both is invalid. The zero value means
// DefaultObjective, i.e. minimize weighted hops.
//
// Metric names are the lowercase wire names of the MapMetrics fields
// ("th", "wh", "mmc", "mc", "amc", "ac", "icv", "icm", "mnrv",
// "mnrm", "used_links", "makespan", "load_imbalance") plus
// "sim_seconds"; resolution is case-insensitive.
type Objective struct {
	Minimize string          `json:"minimize,omitempty"`
	Terms    []ObjectiveTerm `json:"terms,omitempty"`
}

// ObjectiveTerm is one weighted component of a combined objective.
// Weights must be positive and finite; the combined score is the
// weighted sum of the component metrics.
type ObjectiveTerm struct {
	Metric string  `json:"metric"`
	Weight float64 `json:"weight"`
}

// DefaultObjective minimizes weighted hops — the paper's headline
// metric and what an Objective zero value means.
func DefaultObjective() Objective { return Objective{Minimize: "wh"} }

// MinimizeMetric returns the objective minimizing one named metric.
func MinimizeMetric(name string) Objective {
	return Objective{Minimize: name}
}

// ObjectiveMetricNames lists every metric name an Objective may
// reference, in wire order.
func ObjectiveMetricNames() []string {
	return append(metrics.MetricNames(), SimSecondsMetric)
}

// canonicalMetric lowercases and validates one metric name.
func canonicalMetric(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == SimSecondsMetric {
		return n, nil
	}
	if _, ok := metrics.MetricValue(metrics.MapMetrics{}, n); ok {
		return n, nil
	}
	return "", fmt.Errorf("topomap: unknown objective metric %q (want one of: %s)",
		name, strings.Join(ObjectiveMetricNames(), " "))
}

// terms resolves the objective to its canonical weighted-term form,
// validating every name and weight. The zero value resolves to the
// default WH objective.
func (o Objective) terms() ([]ObjectiveTerm, error) {
	if o.Minimize != "" && len(o.Terms) > 0 {
		return nil, fmt.Errorf("topomap: objective sets both minimize and terms; pick one")
	}
	if o.Minimize == "" && len(o.Terms) == 0 {
		o = DefaultObjective()
	}
	if o.Minimize != "" {
		name, err := canonicalMetric(o.Minimize)
		if err != nil {
			return nil, err
		}
		return []ObjectiveTerm{{Metric: name, Weight: 1}}, nil
	}
	out := make([]ObjectiveTerm, 0, len(o.Terms))
	seen := map[string]bool{}
	for _, t := range o.Terms {
		name, err := canonicalMetric(t.Metric)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("topomap: objective names metric %q twice", name)
		}
		seen[name] = true
		if !(t.Weight > 0) || math.IsInf(t.Weight, 0) {
			return nil, fmt.Errorf("topomap: objective weight for %q must be positive and finite, got %g", name, t.Weight)
		}
		out = append(out, ObjectiveTerm{Metric: name, Weight: t.Weight})
	}
	return out, nil
}

// Validate reports whether the objective is well-formed: exactly one
// of Minimize/Terms (or neither, meaning the WH default), every
// metric name known, every weight positive and finite, no metric
// named twice.
func (o Objective) Validate() error {
	_, err := o.terms()
	return err
}

// NeedsSim reports whether scoring the objective requires the
// simulated time, i.e. whether every scored candidate must carry a
// SimSpec.
func (o Objective) NeedsSim() bool {
	ts, err := o.terms()
	if err != nil {
		return false
	}
	for _, t := range ts {
		if t.Metric == SimSecondsMetric {
			return true
		}
	}
	return false
}

// Score evaluates the objective on one solve result: the metric value
// itself for a single-metric objective, the weighted sum for a
// combined one. Lower is better. Scoring a sim_seconds objective on a
// result solved without a SimSpec is an error (RunPortfolio validates
// this before solving).
func (o Objective) Score(res *MapResult) (float64, error) {
	ts, err := o.terms()
	if err != nil {
		return 0, err
	}
	var score float64
	for _, t := range ts {
		var v float64
		if t.Metric == SimSecondsMetric {
			if !res.SimRan {
				return 0, fmt.Errorf("topomap: objective %s needs a solve with a sim spec", SimSecondsMetric)
			}
			v = res.SimSeconds
		} else {
			v, _ = metrics.MetricValue(res.Metrics, t.Metric)
		}
		score += t.Weight * v
	}
	return score, nil
}

// String renders the objective the way the CLI -objective flag parses
// it: "wh", or "mc:0.7,wh:0.3" for a weighted combination.
func (o Objective) String() string {
	ts, err := o.terms()
	if err != nil {
		return "invalid"
	}
	if len(ts) == 1 && ts[0].Weight == 1 {
		return ts[0].Metric
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%s:%g", t.Metric, t.Weight)
	}
	return strings.Join(parts, ",")
}

// ParseObjective parses the String form: a bare metric name
// ("mc"), or comma-separated metric:weight terms ("mc:0.7,wh:0.3").
// An empty string parses to the zero (default WH) objective.
func ParseObjective(s string) (Objective, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Objective{}, nil
	}
	if !strings.ContainsAny(s, ",:") {
		o := Objective{Minimize: s}
		return o, o.Validate()
	}
	var o Objective
	for _, part := range strings.Split(s, ",") {
		name, weight, found := strings.Cut(part, ":")
		if !found {
			return Objective{}, fmt.Errorf("topomap: objective term %q must be metric:weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(weight), 64)
		if err != nil {
			return Objective{}, fmt.Errorf("topomap: objective weight %q: %v", weight, err)
		}
		o.Terms = append(o.Terms, ObjectiveTerm{Metric: strings.TrimSpace(name), Weight: w})
	}
	return o, o.Validate()
}

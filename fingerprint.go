package topomap

import (
	"hash/fnv"
	"math"
	"strconv"

	"repro/internal/torus"
)

// TopologyFingerprint returns a canonical fingerprint of the
// topology: two topologies with the same fingerprint are structurally
// identical (same nodes, links, routes, bandwidths), so engine routing
// state built against one serves the other. The built-in families
// describe their construction parameters ("torus:8x8x8;bw=...",
// "fattree:k=8;...", "dragonfly:h=3;...", via torus.Fingerprinter,
// seen through view layers); other topologies fall back to an FNV-1a
// structural hash over the adjacency and link bandwidths.
func TopologyFingerprint(topo Topology) string {
	if fp, ok := torus.FingerprintOf(topo); ok {
		return fp
	}
	return structuralFingerprint(topo)
}

// AllocationFingerprint returns a canonical fingerprint of the
// allocation: the node set in allocation order plus the per-node
// capacities. Together with TopologyFingerprint it keys the engine
// cache — a repeated job on the same partition hits the cache and
// skips the route-state rebuild.
func AllocationFingerprint(a *Allocation) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(a.Nodes)))
	for _, m := range a.Nodes {
		put(uint64(uint32(m)))
	}
	for _, p := range a.ProcsPerNode {
		put(uint64(p))
	}
	// Per-node speeds fold in only when heterogeneous: a unit speed
	// vector is semantically the nil default, and keeping it out of the
	// hash keeps every pre-heterogeneity fingerprint stable.
	if !a.UnitSpeeds() {
		put(uint64(len(a.Speeds)))
		for _, s := range a.Speeds {
			put(math.Float64bits(s))
		}
	}
	return "alloc:" + strconv.Itoa(len(a.Nodes)) + ":" + strconv.FormatUint(h.Sum64(), 16)
}

// EngineFingerprint returns the canonical cache key of the
// (topology, allocation) pair an Engine is built for.
func EngineFingerprint(topo Topology, a *Allocation) string {
	return TopologyFingerprint(topo) + "|" + AllocationFingerprint(a)
}

// structuralFingerprint hashes what the routing state depends on:
// node count, adjacency, and per-link bandwidth. O(V+E), computed
// only for topologies outside the built-in families.
func structuralFingerprint(topo Topology) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	n := topo.Nodes()
	put(uint64(n))
	put(uint64(topo.Links()))
	put(uint64(topo.Diameter()))
	var nbr []int32
	for v := 0; v < n; v++ {
		nbr = topo.NeighborNodes(v, nbr[:0])
		put(uint64(len(nbr)))
		for _, u := range nbr {
			put(uint64(uint32(u)))
		}
	}
	for l := 0; l < topo.Links(); l++ {
		put(math.Float64bits(topo.LinkBW(l)))
	}
	return "custom:" + strconv.Itoa(n) + ":" + strconv.FormatUint(h.Sum64(), 16)
}

// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, so the per-PR benchmark trajectory
// (BENCH_PR*.json, written by `make bench-json`) can be diffed and
// plotted instead of eyeballed.
//
//	go test -run='^$' -bench='BenchmarkEngine' . | benchjson -out BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmarks and
	// the -cpu suffix (e.g. "BenchmarkEngineReuse/torus-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (B/op, allocs/op,
	// custom b.ReportMetric units like "WH") keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// CPUs is the GOMAXPROCS of the run that produced the benchmark
	// text, parsed from the -N suffix go test stamps on every result
	// name (falling back to the converting host's CPU count for
	// suffix-less input). Parallel benchmarks (w1 vs w8
	// sub-benchmarks) only show a speedup when this exceeds 1 — see
	// the notes preamble.
	CPUs int `json:"cpus"`
	// Notes is the context preamble: -note flags first, then the
	// automatic environment caveats (e.g. the single-CPU warning).
	// Read it before comparing numbers across BENCH_PR*.json files.
	Notes      []string    `json:"notes,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// notesFlag collects repeated -note values.
type notesFlag []string

func (n *notesFlag) String() string { return strings.Join(*n, "; ") }
func (n *notesFlag) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	var notes notesFlag
	flag.Var(&notes, "note", "free-form annotation recorded in the report (repeatable)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	report.CPUs = recordedCPUs(report.Benchmarks)
	report.Notes = notes
	if report.CPUs == 1 {
		report.Notes = append(report.Notes,
			"recorded on a 1-CPU host: w1/w8 sub-benchmarks are expected to tie and portfolio solves cost roughly the sum of their candidates; re-record on a multi-core host for the parallel speedups (see docs/ARCHITECTURE.md, Benchmark records)")
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// recordedCPUs extracts the GOMAXPROCS of the benchmark run from the
// -N suffix of the result names ("BenchmarkEngineReuse/torus-8" → 8),
// so a log recorded on a 1-CPU container keeps its caveat even when
// converted on a multi-core workstation. go test stamps the suffix on
// every result whenever GOMAXPROCS > 1; bare names mean 1 unless no
// line carries a suffix at all, in which case the converting host is
// the best available answer.
func recordedCPUs(benchmarks []Benchmark) int {
	cpus := 0
	for _, b := range benchmarks {
		n := 1
		if i := strings.LastIndexByte(b.Name, '-'); i >= 0 {
			if v, err := strconv.Atoi(b.Name[i+1:]); err == nil && v > 0 {
				n = v
			}
		}
		if n > cpus {
			cpus = n
		}
	}
	if cpus <= 1 && runtime.NumCPU() == 1 {
		// Suffix-less output is what GOMAXPROCS=1 produces; confirm
		// against the host rather than trusting absence alone.
		return 1
	}
	if cpus == 0 {
		return runtime.NumCPU()
	}
	return cpus
}

// parse reads `go test -bench` output: header lines (goos/goarch/pkg/
// cpu) and result lines of the form
//
//	BenchmarkName-8   100   9122762 ns/op   123 WH   0 B/op
func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	header := func(line, key string) (string, bool) {
		if rest, ok := strings.CutPrefix(line, key+": "); ok {
			return strings.TrimSpace(rest), true
		}
		return "", false
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := header(line, "goos"); ok {
			r.Goos = v
			continue
		}
		if v, ok := header(line, "goarch"); ok {
			r.Goarch = v
			continue
		}
		if v, ok := header(line, "pkg"); ok {
			r.Pkg = v
			continue
		}
		if v, ok := header(line, "cpu"); ok {
			r.CPU = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX 	--- FAIL"
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	return r, sc.Err()
}

// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, so the per-PR benchmark trajectory
// (BENCH_PR*.json, written by `make bench-json`) can be diffed and
// plotted instead of eyeballed.
//
//	go test -run='^$' -bench='BenchmarkEngine' . | benchjson -out BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmarks and
	// the -cpu suffix (e.g. "BenchmarkEngineReuse/torus-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (B/op, allocs/op,
	// custom b.ReportMetric units like "WH") keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Notes      []string    `json:"notes,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// notesFlag collects repeated -note values.
type notesFlag []string

func (n *notesFlag) String() string { return strings.Join(*n, "; ") }
func (n *notesFlag) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	var notes notesFlag
	flag.Var(&notes, "note", "free-form annotation recorded in the report (repeatable)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	report.Notes = notes
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output: header lines (goos/goarch/pkg/
// cpu) and result lines of the form
//
//	BenchmarkName-8   100   9122762 ns/op   123 WH   0 B/op
func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	header := func(line, key string) (string, bool) {
		if rest, ok := strings.CutPrefix(line, key+": "); ok {
			return strings.TrimSpace(rest), true
		}
		return "", false
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := header(line, "goos"); ok {
			r.Goos = v
			continue
		}
		if v, ok := header(line, "goarch"); ok {
			r.Goarch = v
			continue
		}
		if v, ok := header(line, "pkg"); ok {
			r.Pkg = v
			continue
		}
		if v, ok := header(line, "cpu"); ok {
			r.CPU = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX 	--- FAIL"
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	return r, sc.Err()
}

// Command mapd is the resident mapping daemon: the library's Engine
// behind an HTTP wire protocol, the shape a resource manager embeds
// at job-launch time. It keeps an LRU cache of engines keyed by the
// canonical (topology, allocation) fingerprint, so repeated jobs on
// the same partition skip the route-state rebuild, and serves solves
// from a bounded worker pool with per-request deadlines.
//
// Endpoints:
//
//	POST /v1/map        one mapping job
//	POST /v1/map/batch  several mappers against one shared engine
//	POST /v1/portfolio  candidate solves raced toward an objective
//	POST /v1/remap      incremental remap of a cached result onto a changed allocation
//	GET  /v1/mappers    registered mappers with capability flags
//	GET  /healthz       liveness
//	GET  /statusz       live counters (requests, portfolio, cache, latency)
//
// Example:
//
//	mapd -addr :8080 &
//	curl -s localhost:8080/v1/map -d '{
//	  "topology":   {"kind": "torus", "dims": [8,8,8]},
//	  "allocation": {"sparse_nodes": 4, "seed": 1},
//	  "tasks":      {"n": 4, "edges": [[0,1,10],[1,2,10],[2,3,10],[3,0,10]]},
//	  "mapper":     "UWH"
//	}'
//	curl -s localhost:8080/v1/portfolio -d '{
//	  "topology":   {"kind": "torus", "dims": [8,8,8]},
//	  "allocation": {"sparse_nodes": 4, "seed": 1},
//	  "tasks":      {"n": 4, "edges": [[0,1,10],[1,2,10],[2,3,10],[3,0,10]]},
//	  "candidates": [{"mapper": "UWH"}, {"mapper": "UMC"}, {"mapper": "UG"}],
//	  "objective":  {"minimize": "mc"}
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "total solver worker slots; a request with parallelism p holds p slots (0 = GOMAXPROCS)")
	maxPar := flag.Int("max-parallelism", 0, "cap on a single request's `parallelism` field (0 = GOMAXPROCS, clamped to -workers)")
	cacheSize := flag.Int("cache", 32, "engine cache entries (topology+allocation pairs)")
	maxCand := flag.Int("max-candidates", 0, "cap on a portfolio request's explicit candidate list (0 = 16)")
	results := flag.Int("results", 0, "recent results /v1/remap can reference by fingerprint (0 = 128)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:                *workers,
		MaxParallelism:         *maxPar,
		CacheSize:              *cacheSize,
		MaxPortfolioCandidates: *maxCand,
		ResultCacheSize:        *results,
		DefaultTimeout:         *timeout,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mapd: serving on %s (workers=%d cache=%d timeout=%s)",
			*addr, srv.Status().Workers, *cacheSize, *timeout)
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mapd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Printf("mapd: %s, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mapd: shutdown:", err)
			os.Exit(1)
		}
	}
}

// Command mapd is the resident mapping daemon: the library's Engine
// behind an HTTP wire protocol, the shape a resource manager embeds
// at job-launch time. It keeps an LRU cache of engines keyed by the
// canonical (topology, allocation) fingerprint, so repeated jobs on
// the same partition skip the route-state rebuild, and serves solves
// from a bounded worker pool with per-request deadlines.
//
// Endpoints:
//
//	POST /v1/map        one mapping job
//	POST /v1/map/batch  several mappers against one shared engine
//	POST /v1/portfolio  candidate solves raced toward an objective
//	POST /v1/remap      incremental remap of a cached result onto a changed allocation
//	GET  /v1/mappers    registered mappers with capability flags
//	GET  /healthz       liveness
//	GET  /statusz       live counters (requests, portfolio, cache, latency)
//	GET  /metrics       Prometheus text exposition (counters + latency histograms)
//
// -log-level enables structured request logging on stderr; -debug-addr
// serves net/http/pprof on a separate listener, kept off the service
// port so profiling endpoints are never reachable from the wire the
// resource manager talks to.
//
// Example:
//
//	mapd -addr :8080 &
//	curl -s localhost:8080/v1/map -d '{
//	  "topology":   {"kind": "torus", "dims": [8,8,8]},
//	  "allocation": {"sparse_nodes": 4, "seed": 1},
//	  "tasks":      {"n": 4, "edges": [[0,1,10],[1,2,10],[2,3,10],[3,0,10]]},
//	  "mapper":     "UWH"
//	}'
//	curl -s localhost:8080/v1/portfolio -d '{
//	  "topology":   {"kind": "torus", "dims": [8,8,8]},
//	  "allocation": {"sparse_nodes": 4, "seed": 1},
//	  "tasks":      {"n": 4, "edges": [[0,1,10],[1,2,10],[2,3,10],[3,0,10]]},
//	  "candidates": [{"mapper": "UWH"}, {"mapper": "UMC"}, {"mapper": "UG"}],
//	  "objective":  {"minimize": "mc"}
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

// logLevel parses the -log-level flag; empty disables request logging
// (counters and histograms record regardless).
func logLevel(s string) (slog.Level, bool, error) {
	switch s {
	case "":
		return 0, false, nil
	case "debug":
		return slog.LevelDebug, true, nil
	case "info":
		return slog.LevelInfo, true, nil
	case "warn":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	}
	return 0, false, fmt.Errorf("mapd: -log-level %q, want debug|info|warn|error", s)
}

// debugMux is the pprof handler set, mounted only on -debug-addr:
// profiles expose internals and burn CPU, so they live on their own
// listener (typically bound to localhost), never the service port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "total solver worker slots; a request with parallelism p holds p slots (0 = GOMAXPROCS)")
	maxPar := flag.Int("max-parallelism", 0, "cap on a single request's `parallelism` field (0 = GOMAXPROCS, clamped to -workers)")
	cacheSize := flag.Int("cache", 32, "engine cache entries (topology+allocation pairs)")
	maxCand := flag.Int("max-candidates", 0, "cap on a portfolio request's explicit candidate list (0 = 16)")
	results := flag.Int("results", 0, "recent results /v1/remap can reference by fingerprint (0 = 128)")
	intern := flag.Int("intern", 0, "interned request sections /v2 clients can reference by fingerprint (0 = 512)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof, e.g. localhost:6060 (empty = disabled)")
	logLvl := flag.String("log-level", "", "structured request logging level: debug|info|warn|error (empty = off)")
	flag.Parse()

	level, logOn, err := logLevel(*logLvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var logger *slog.Logger
	if logOn {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}

	srv := service.New(service.Config{
		Workers:                *workers,
		MaxParallelism:         *maxPar,
		CacheSize:              *cacheSize,
		MaxPortfolioCandidates: *maxCand,
		ResultCacheSize:        *results,
		InternTableSize:        *intern,
		DefaultTimeout:         *timeout,
		Logger:                 logger,
	})

	if *debugAddr != "" {
		go func() {
			log.Printf("mapd: pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				log.Printf("mapd: pprof listener: %v", err)
			}
		}()
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mapd: serving on %s (workers=%d cache=%d timeout=%s)",
			*addr, srv.Status().Workers, *cacheSize, *timeout)
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mapd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Printf("mapd: %s, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mapd: shutdown:", err)
			os.Exit(1)
		}
	}
}

// Command docscheck verifies that the intra-repo markdown links of
// the given files resolve. It is the `make docs` backstop against
// documentation rot: a renamed file or a deleted section breaks the
// build instead of a reader.
//
//	go run ./cmd/docscheck README.md ROADMAP.md docs/ARCHITECTURE.md
//
// Checked links are the inline [text](target) form. External targets
// (http/https/mailto) and pure in-page anchors (#section) are skipped;
// a relative target is resolved against the linking file's directory
// and must exist (any #fragment is stripped first). Reference-style
// definitions and autolinks are out of scope — the entry-point docs
// only use the inline form.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links. The target group stops at the
// first ')' — none of the checked docs link to paths containing
// parentheses.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			broken++
			continue
		}
		dir := filepath.Dir(file)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue // external
				}
				target, _, _ = strings.Cut(target, "#")
				if target == "" {
					continue // in-page anchor
				}
				resolved := filepath.Join(dir, target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "docscheck: %s:%d: broken link %q (%s)\n",
						file, i+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

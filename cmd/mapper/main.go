// Command mapper maps an MPI task graph onto a torus allocation and
// reports the mapping metrics — the end-user tool of the library.
//
// The task graph is read from a file of whitespace-separated lines
// "src dst volume" (directed edges, 0-based task ids), or generated
// from a dataset matrix with -matrix/-partitioner.
//
// Example:
//
//	mapper -matrix cagelike -procs 256 -algo UWH -torus 8x8x8
//	mapper -graph app.tgraph -algo UMC -torus 16x12x16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	topomap "repro"
)

func main() {
	graphPath := flag.String("graph", "", "task graph file (src dst volume per line)")
	matName := flag.String("matrix", "", "dataset matrix to partition instead of -graph")
	partName := flag.String("partitioner", "PATOH", "partitioner personality for -matrix")
	procs := flag.Int("procs", 256, "number of MPI processes (with -matrix)")
	algo := flag.String("algo", "UWH", "mapper: DEF TMAP TMAPG SMAP UG UWH UMC UMMC UTH UML UMCA")
	torusSpec := flag.String("torus", "8x8x8", "torus dimensions XxYxZ")
	mesh := flag.Bool("mesh", false, "use a mesh (no wraparound) instead of a torus")
	seed := flag.Int64("seed", 1, "random seed (allocation, partitioner)")
	tier := flag.String("tier", "small", "dataset tier with -matrix: tiny, small, large")
	allocFile := flag.String("allocfile", "", "read the allocation from a node-list file (node [procs] lines) instead of generating one")
	rankFile := flag.String("rankfile", "", "write a Cray-style MPICH_RANK_ORDER file realizing the mapping")
	viz := flag.Bool("viz", false, "render the congestion histogram, hottest links and torus slice maps")
	flag.Parse()

	dims, err := parseDims(*torusSpec)
	if err != nil {
		fail(err)
	}
	bw := []float64{9.38e9, 4.68e9, 9.38e9} // Hopper-like heterogeneous links
	var topo *topomap.Torus
	if *mesh {
		topo = topomap.NewTorusMesh(dims[:], bw)
	} else {
		topo = topomap.NewTorus(dims[:], bw)
	}

	var tg *topomap.TaskGraph
	switch {
	case *matName != "":
		t := topomap.Small
		switch strings.ToLower(*tier) {
		case "tiny":
			t = topomap.Tiny
		case "large":
			t = topomap.Large
		}
		m, err := topomap.GenerateMatrix(*matName, t)
		if err != nil {
			fail(err)
		}
		part, err := topomap.PartitionMatrix(topomap.Partitioner(*partName), m, *procs, *seed)
		if err != nil {
			fail(err)
		}
		tg, err = topomap.BuildTaskGraph(m, part, *procs)
		if err != nil {
			fail(err)
		}
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			fail(err)
		}
		tg, err = topomap.ReadTaskGraph(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -graph or -matrix"))
	}

	var a *topomap.Allocation
	if *allocFile != "" {
		f, err := os.Open(*allocFile)
		if err != nil {
			fail(err)
		}
		a, err = topomap.ReadNodeList(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		for _, n := range a.Nodes {
			if int(n) >= topo.Nodes() {
				fail(fmt.Errorf("allocfile node %d outside the %s torus", n, *torusSpec))
			}
		}
	} else {
		nodes := (tg.K + 15) / 16
		var err error
		a, err = topomap.SparseAllocation(topo, nodes, *seed)
		if err != nil {
			fail(err)
		}
	}
	res, err := topomap.RunMapping(topomap.Mapper(strings.ToUpper(*algo)), tg, topo, a, *seed)
	if err != nil {
		fail(err)
	}
	if *rankFile != "" {
		f, err := os.Create(*rankFile)
		if err != nil {
			fail(err)
		}
		err = topomap.WriteRankOrder(f, res.Placement(), a)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote rank order to %s\n", *rankFile)
	}
	m := res.Metrics
	fmt.Printf("tasks: %d   nodes: %d   torus: %s\n", tg.K, a.NumNodes(), *torusSpec)
	fmt.Printf("mapper: %s\n", strings.ToUpper(*algo))
	fmt.Printf("TH  = %d\n", m.TH)
	fmt.Printf("WH  = %d\n", m.WH)
	fmt.Printf("MMC = %d\n", m.MMC)
	fmt.Printf("MC  = %.6g\n", m.MC)
	fmt.Printf("AMC = %.4f\n", m.AMC)
	fmt.Printf("AC  = %.6g\n", m.AC)
	fmt.Printf("used links = %d\n", m.UsedLinks)
	for g, n := range res.NodeOf {
		fmt.Printf("group %d -> node %d\n", g, n)
		if g > 20 {
			fmt.Printf("... (%d more)\n", len(res.NodeOf)-g-1)
			break
		}
	}
	if *viz {
		fmt.Println()
		if err := topomap.RenderCongestionHistogram(os.Stdout, tg, topo, res.Placement(), 10); err != nil {
			fail(err)
		}
		fmt.Println()
		if err := topomap.RenderTopLinks(os.Stdout, tg, topo, res.Placement(), 10); err != nil {
			fail(err)
		}
		fmt.Println()
		for z := 0; z < dims[2]; z++ {
			if err := topomap.RenderSliceMap(os.Stdout, topo, a, res.Coarse, res.NodeOf, z); err != nil {
				fail(err)
			}
		}
	}
}

func parseDims(s string) ([3]int, error) {
	var dims [3]int
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return dims, fmt.Errorf("mapper: torus spec %q must be XxYxZ", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return dims, fmt.Errorf("mapper: bad torus dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mapper:", err)
	os.Exit(1)
}

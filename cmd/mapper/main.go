// Command mapper maps an MPI task graph onto a network allocation and
// reports the mapping metrics — the end-user tool of the library. It
// drives the topology-generic Engine, so the same invocation works on
// a torus, a mesh, a k-ary fat tree or a canonical dragonfly; the
// resident-daemon counterpart is cmd/mapd.
//
// The task graph is read from a file of whitespace-separated lines
// "src dst volume" (directed edges, 0-based task ids), or generated
// from a dataset matrix with -matrix/-partitioner.
//
// Examples:
//
//	mapper -matrix cagelike -procs 256 -algo UWH -torus 8x8x8
//	mapper -graph app.tgraph -algo UMC -torus 16x12x16
//	mapper -matrix cagelike -procs 256 -algo UWH -topology fattree -fattree-k 8
//	mapper -matrix cagelike -procs 256 -algo UMC -topology dragonfly -dragonfly-h 3
//	mapper -matrix cagelike -procs 256 -portfolio all -objective mc -torus 8x8x8
//	mapper -graph app.tgraph -portfolio UWH,UMC,UMMC -objective mc:0.7,wh:0.3
//	mapper -graph app.tgraph -algo UWH -remap '{"remove":[12],"add":[{"node":40,"procs":16}]}'
//	mapper -graph stencil.tgraph -coords stencil.xyz -algo GEOM -torus 8x8x8
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: it parses args, executes the pipeline and
// returns the process exit code — non-zero on any failure, including
// unknown mapper or topology names.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mapper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphPath := fs.String("graph", "", "task graph file (src dst volume per line)")
	matName := fs.String("matrix", "", "dataset matrix to partition instead of -graph")
	partName := fs.String("partitioner", "PATOH", "partitioner personality for -matrix")
	procs := fs.Int("procs", 256, "number of MPI processes (with -matrix)")
	algo := fs.String("algo", "UWH", "mapper: "+mapperList())
	portfolio := fs.String("portfolio", "", "race a comma-separated mapper portfolio (or 'all' for every compatible mapper) instead of -algo, selecting by -objective")
	objective := fs.String("objective", "", "objective: a metric name ("+strings.Join(topomap.ObjectiveMetricNames(), " ")+"; default wh) or weighted metric:weight terms, e.g. mc:0.7,wh:0.3; selects the -portfolio winner or scores the -remap fence")
	remapDelta := fs.String("remap", "", `after solving, remap incrementally under an allocation-delta JSON, e.g. '{"remove":[12],"add":[{"node":40,"procs":16}]}'`)
	fence := fs.Float64("fence", 0, "allowed relative objective regression of the warm -remap path before the cold fallback runs (0 = default 5%, negative disables)")
	topoKind := fs.String("topology", "torus", "network family: torus, fattree, dragonfly")
	torusSpec := fs.String("torus", "8x8x8", "torus dimensions XxYxZ (with -topology torus)")
	mesh := fs.Bool("mesh", false, "use a mesh (no wraparound) instead of a torus")
	ftK := fs.Int("fattree-k", 8, "fat-tree arity k (even; k³/4 hosts, with -topology fattree)")
	ftTaper := fs.Float64("fattree-taper", 2, "fat-tree per-level bandwidth taper (1 = full bisection)")
	dfH := fs.Int("dragonfly-h", 3, "dragonfly global links per router (with -topology dragonfly)")
	seed := fs.Int64("seed", 1, "random seed (allocation, partitioner)")
	workers := fs.Int("workers", 0, "solver parallelism: worker goroutines for this solve (0 = all CPUs, 1 = serial; the mapping is identical at any value)")
	tier := fs.String("tier", "small", "dataset tier with -matrix: tiny, small, large")
	allocFile := fs.String("allocfile", "", "read the allocation from a node-list file (node [procs] lines) instead of generating one")
	rankFile := fs.String("rankfile", "", "write a Cray-style MPICH_RANK_ORDER file realizing the mapping")
	traced := fs.Bool("trace", false, "print the solve's stage timeline: wall time, share, workers and per-stage counters (the mapping is identical with or without)")
	viz := fs.Bool("viz", false, "render the congestion histogram, hottest links and torus slice maps")
	binaryWire := fs.Bool("binary", false, "solve through an in-process mapd over the /v2 binary frame protocol instead of driving the engine directly — same mapping, same output (incompatible with -portfolio and -viz)")
	loadsSpec := fs.String("loads", "", "per-task compute loads as comma-separated value[xCount] terms, e.g. 8x16,1x48 (total = task count); overrides loads carried by -graph or -matrix")
	coordsFile := fs.String("coords", "", "per-task coordinate file (task x y [z] lines, one per task) attaching 2D/3D geometry to the graph; overrides coordinates carried by -graph; the geometric mappers (GEOM, SFCM) require coordinates")
	speedsSpec := fs.String("speeds", "", "per-node speed factors as comma-separated value[xCount] terms, e.g. 4x4,1x12 (a single value broadcasts; total = allocation nodes)")
	balance := fs.Bool("balance", false, "run the makespan-aware load-repair stage after mapping (automatic when -speeds is non-unit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mapper:", err)
		return 1
	}

	// Validate mapper and objective names before any expensive work,
	// so a typo fails in microseconds, not after a partitioner run.
	mapper := topomap.Mapper(strings.ToUpper(*algo))
	if *portfolio == "" && !knownMapper(mapper) {
		return fail(fmt.Errorf("unknown mapper %q (want one of: %s)", *algo, mapperList()))
	}
	obj, err := topomap.ParseObjective(*objective)
	if err != nil {
		return fail(err)
	}
	if *objective != "" && *portfolio == "" && *remapDelta == "" {
		return fail(fmt.Errorf("-objective drives -portfolio selection or the -remap fence; add -portfolio or -remap (or drop -objective)"))
	}
	var delta topomap.AllocationDelta
	if *remapDelta != "" {
		dec := json.NewDecoder(strings.NewReader(*remapDelta))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&delta); err != nil {
			return fail(fmt.Errorf("bad -remap delta: %w", err))
		}
		if delta.Empty() {
			return fail(fmt.Errorf("-remap delta changes nothing"))
		}
	}
	if obj.NeedsSim() {
		return fail(fmt.Errorf("objective %s needs a simulation spec, which the CLI does not provide; use the library or mapd portfolio API", topomap.SimSecondsMetric))
	}
	if *binaryWire && *portfolio != "" {
		return fail(fmt.Errorf("-binary drives one /v2 map frame; portfolio racing has no frame endpoint — drop -binary or -portfolio"))
	}
	if *binaryWire && *viz {
		return fail(fmt.Errorf("-viz renders from in-process coarsening state, which does not travel over the wire; drop -binary or -viz"))
	}
	var candidates []topomap.Mapper
	if *portfolio != "" && !strings.EqualFold(*portfolio, "all") {
		seen := map[topomap.Mapper]bool{}
		for _, name := range strings.Split(*portfolio, ",") {
			mp := topomap.Mapper(strings.ToUpper(strings.TrimSpace(name)))
			if !knownMapper(mp) {
				return fail(fmt.Errorf("unknown portfolio mapper %q (want one of: %s)", name, mapperList()))
			}
			// All CLI candidates share -seed, so a repeated mapper is a
			// duplicate (mapper, seed) — reject before the pipeline runs.
			if seen[mp] {
				return fail(fmt.Errorf("duplicate portfolio mapper %s", mp))
			}
			seen[mp] = true
			candidates = append(candidates, mp)
		}
	}

	net, err := buildTopology(*topoKind, *torusSpec, *mesh, *ftK, *ftTaper, *dfH)
	if err != nil {
		return fail(err)
	}

	var tg *topomap.TaskGraph
	switch {
	case *matName != "":
		t := topomap.Small
		switch strings.ToLower(*tier) {
		case "tiny":
			t = topomap.Tiny
		case "large":
			t = topomap.Large
		}
		m, err := topomap.GenerateMatrix(*matName, t)
		if err != nil {
			return fail(err)
		}
		part, err := topomap.PartitionMatrix(topomap.Partitioner(*partName), m, *procs, *seed)
		if err != nil {
			return fail(err)
		}
		tg, err = topomap.BuildTaskGraph(m, part, *procs)
		if err != nil {
			return fail(err)
		}
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			return fail(err)
		}
		tg, err = topomap.ReadTaskGraph(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("need -graph or -matrix"))
	}
	if *loadsSpec != "" {
		loads, err := parseLoads(*loadsSpec)
		if err != nil {
			return fail(err)
		}
		if len(loads) != tg.G.N() {
			return fail(fmt.Errorf("-loads lists %d tasks, the graph has %d", len(loads), tg.G.N()))
		}
		// Unit loads canonicalize to the absent vector, same as every
		// wire boundary, so -loads 1xN is exactly a homogeneous run.
		tg.G.VW = loads
		unit := true
		for _, l := range loads {
			if l != 1 {
				unit = false
				break
			}
		}
		if unit {
			tg.G.VW = nil
		}
	}
	if *coordsFile != "" {
		f, err := os.Open(*coordsFile)
		if err != nil {
			return fail(err)
		}
		dim, coords, err := parseCoords(f, tg.G.N())
		f.Close()
		if err != nil {
			return fail(err)
		}
		if err := tg.SetCoords(dim, coords); err != nil {
			return fail(err)
		}
	}

	var a *topomap.Allocation
	if *allocFile != "" {
		f, err := os.Open(*allocFile)
		if err != nil {
			return fail(err)
		}
		a, err = topomap.ReadNodeList(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		for _, n := range a.Nodes {
			if int(n) >= net.Hosts {
				return fail(fmt.Errorf("allocfile node %d outside the %d placement-eligible nodes of the %s", n, net.Hosts, net.Label))
			}
		}
	} else {
		nodes := (tg.K + 15) / 16
		a, err = net.SparseAlloc(nodes, *seed)
		if err != nil {
			return fail(err)
		}
	}
	if *speedsSpec != "" {
		speeds, err := parseSpeeds(*speedsSpec)
		if err != nil {
			return fail(err)
		}
		if len(speeds) == 1 && a.NumNodes() > 1 {
			one := speeds[0]
			speeds = make([]float64, a.NumNodes())
			for i := range speeds {
				speeds[i] = one
			}
		}
		if len(speeds) != a.NumNodes() {
			return fail(fmt.Errorf("-speeds lists %d nodes, the allocation has %d", len(speeds), a.NumNodes()))
		}
		a.Speeds = speeds
		a.CanonicalizeSpeeds()
	}

	if *binaryWire {
		tspec, err := topoSpec(*topoKind, *torusSpec, *mesh, *ftK, *ftTaper, *dfH)
		if err != nil {
			return fail(err)
		}
		job := binaryJob{
			net: net, topo: tspec, tg: tg, alloc: a,
			mapper: mapper, seed: *seed, workers: *workers,
			traced: *traced, rankFile: *rankFile, obj: obj, fence: *fence,
			balance: *balance,
		}
		if *remapDelta != "" {
			job.delta = &delta
		}
		if err := runBinary(stdout, job); err != nil {
			return fail(err)
		}
		return 0
	}

	eng, err := topomap.NewEngine(net.Topo, a)
	if err != nil {
		return fail(err)
	}
	var res *topomap.MapResult
	if *portfolio != "" {
		if len(candidates) == 0 && *traced {
			// "all" normally expands inside RunPortfolio; expand here so
			// the trace request reaches every candidate (the winner's
			// timeline is the one printed).
			candidates = eng.CompatibleMappersFor(tg)
		}
		var solves []topomap.Solve
		for _, mp := range candidates {
			solves = append(solves, topomap.Solve{Mapper: mp, Seed: *seed, Trace: *traced, Balance: *balance})
		}
		pres, err := eng.RunPortfolio(context.Background(), topomap.PortfolioRequest{
			Tasks:      tg,
			Candidates: solves, // nil = all compatible registered mappers
			Seed:       *seed,
			Objective:  obj,
			Workers:    *workers,
		})
		if err != nil {
			return fail(err)
		}
		res = pres.Best
		fmt.Fprintf(stdout, "portfolio: %d candidates, objective %s\n", len(pres.Leaderboard), obj)
		for rank, entry := range pres.Leaderboard {
			if entry.Skipped {
				fmt.Fprintf(stdout, "  #%d %s seed %d: skipped (deadline)\n", rank+1, entry.Solve.Mapper, entry.Solve.Seed)
				continue
			}
			fmt.Fprintf(stdout, "  #%d %s seed %d: score %.6g\n", rank+1, entry.Solve.Mapper, entry.Solve.Seed, entry.Score)
		}
		fmt.Fprintf(stdout, "winner: %s\n", res.Mapper)
		mapper = res.Mapper
	} else {
		opts := []topomap.RequestOption{topomap.WithParallelism(*workers)}
		if *traced {
			opts = append(opts, topomap.WithTrace())
		}
		if *balance {
			opts = append(opts, topomap.WithBalance())
		}
		res, err = eng.Run(topomap.Request{Mapper: mapper, Tasks: tg, Seed: *seed, Options: opts})
		if err != nil {
			return fail(err)
		}
	}
	if *remapDelta != "" {
		rres, err := eng.RunRemap(context.Background(), tg, res, delta, topomap.RemapSpec{
			Solve:          topomap.Solve{Seed: *seed, Workers: *workers, Trace: *traced, Balance: *balance},
			Objective:      obj,
			FenceThreshold: *fence,
		})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "remap: migrated %d tasks, reused %d/%d route pairs\n",
			rres.MigratedTasks, rres.PairsReused, rres.PairsTotal)
		switch {
		case rres.FenceTripped && !rres.Warm:
			fmt.Fprintf(stdout, "remap: fence tripped (prev %.6g, warm %.6g); cold fallback won at %.6g\n",
				rres.PrevScore, rres.WarmScore, rres.ColdScore)
		case rres.FenceTripped:
			fmt.Fprintf(stdout, "remap: fence tripped (prev %.6g, warm %.6g); warm still beat the cold fallback (%.6g)\n",
				rres.PrevScore, rres.WarmScore, rres.ColdScore)
		default:
			fmt.Fprintf(stdout, "remap: warm result kept (prev %.6g, warm %.6g)\n", rres.PrevScore, rres.WarmScore)
		}
		// Downstream output — metrics, rankfile, viz — describes the
		// post-delta mapping on the post-delta allocation.
		res, a = rres.Result, rres.Allocation
	}
	if *rankFile != "" {
		f, err := os.Create(*rankFile)
		if err != nil {
			return fail(err)
		}
		err = topomap.WriteRankOrder(f, res.Placement(), a)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote rank order to %s\n", *rankFile)
	}
	m := res.Metrics
	fmt.Fprintf(stdout, "tasks: %d   nodes: %d   network: %s\n", tg.K, a.NumNodes(), net.Label)
	fmt.Fprintf(stdout, "mapper: %s\n", mapper)
	fmt.Fprintf(stdout, "TH  = %d\n", m.TH)
	fmt.Fprintf(stdout, "WH  = %d\n", m.WH)
	fmt.Fprintf(stdout, "MMC = %d\n", m.MMC)
	fmt.Fprintf(stdout, "MC  = %.6g\n", m.MC)
	fmt.Fprintf(stdout, "AMC = %.4f\n", m.AMC)
	fmt.Fprintf(stdout, "AC  = %.6g\n", m.AC)
	fmt.Fprintf(stdout, "used links = %d\n", m.UsedLinks)
	if tg.G.VW != nil || !a.UnitSpeeds() || *balance {
		fmt.Fprintf(stdout, "makespan = %.6g\n", m.Makespan)
		fmt.Fprintf(stdout, "load imbalance = %.4f\n", m.LoadImbalance)
	}
	if *traced && res.Trace != nil {
		fmt.Fprintf(stdout, "stages (%.3fms total):\n", res.Trace.TotalMS())
		fmt.Fprint(stdout, trace.Format(res.Trace.Stages(), res.Trace.TotalMS()))
	}
	for g, n := range res.NodeOf {
		fmt.Fprintf(stdout, "group %d -> node %d\n", g, n)
		if g > 20 {
			fmt.Fprintf(stdout, "... (%d more)\n", len(res.NodeOf)-g-1)
			break
		}
	}
	if *viz {
		fmt.Fprintln(stdout)
		if err := topomap.RenderCongestionHistogram(stdout, tg, net.Topo, res.Placement(), 10); err != nil {
			return fail(err)
		}
		if t, ok := net.Topo.(*topomap.Torus); ok {
			fmt.Fprintln(stdout)
			if err := topomap.RenderTopLinks(stdout, tg, t, res.Placement(), 10); err != nil {
				return fail(err)
			}
			fmt.Fprintln(stdout)
			for z := 0; z < t.Dims()[2]; z++ {
				if err := topomap.RenderSliceMap(stdout, t, a, res.Coarse, res.NodeOf, z); err != nil {
					return fail(err)
				}
			}
		}
	}
	return 0
}

// topoSpec translates the CLI flags into the service's wire-level
// topology spec; the server (or buildTopology here) normalizes it.
func topoSpec(kind, torusSpec string, mesh bool, ftK int, ftTaper float64, dfH int) (service.TopologySpec, error) {
	spec := service.TopologySpec{Kind: strings.ToLower(kind)}
	switch spec.Kind {
	case "torus":
		dims, err := parseDims(torusSpec)
		if err != nil {
			return service.TopologySpec{}, err
		}
		spec.Dims = dims[:]
		if mesh {
			spec.Kind = "mesh"
		}
	case "fattree":
		spec.K = ftK
		spec.Taper = ftTaper
	case "dragonfly":
		spec.H = dfH
	}
	return spec, nil
}

// buildTopology builds the network from the CLI flags — one
// construction path shared with cmd/mapd.
func buildTopology(kind, torusSpec string, mesh bool, ftK int, ftTaper float64, dfH int) (*service.Network, error) {
	spec, err := topoSpec(kind, torusSpec, mesh, ftK, ftTaper, dfH)
	if err != nil {
		return nil, err
	}
	spec, err = spec.Normalize()
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// binaryJob is what the -binary path needs from the flag pipeline:
// the already-built network and inputs (shared with the direct path,
// so both modes solve the identical instance) plus the solve knobs.
type binaryJob struct {
	net      *service.Network
	topo     service.TopologySpec
	tg       *topomap.TaskGraph
	alloc    *topomap.Allocation
	mapper   topomap.Mapper
	seed     int64
	workers  int
	traced   bool
	rankFile string
	delta    *topomap.AllocationDelta // nil = no -remap
	obj      topomap.Objective
	fence    float64
	balance  bool
}

// taskSpec re-encodes the in-memory task graph as the wire edge list.
// The CSR is directed (mappers symmetrize downstream), so every
// stored arc is emitted verbatim; the server's FromEdges then
// rebuilds the identical CSR — parallel arcs were already merged and
// self loops dropped when this graph was constructed.
func taskSpec(tg *topomap.TaskGraph) service.TaskGraphSpec {
	spec := service.TaskGraphSpec{N: tg.G.N()}
	for v := 0; v < tg.G.N(); v++ {
		adj, w := tg.G.Neighbors(v), tg.G.Weights(v)
		for i, u := range adj {
			spec.Edges = append(spec.Edges, [3]int64{int64(v), int64(u), w[i]})
		}
	}
	if tg.G.VW != nil {
		spec.Loads = append([]int64(nil), tg.G.VW...)
	}
	if tg.HasCoords() {
		spec.Coords = make([][]float64, tg.G.N())
		for v := 0; v < tg.G.N(); v++ {
			spec.Coords[v] = append([]float64(nil), tg.Coord(v)...)
		}
	}
	return spec
}

// runBinary is the -binary pipeline tail: spin an in-process mapd,
// route the solve (and the optional remap) through /v2 binary frames,
// and print the same report the direct path prints. The rankfile is
// rendered server-side and written here; the trace is the stage
// timeline echoed over the wire.
func runBinary(stdout io.Writer, job binaryJob) error {
	// The wire task graph addresses tasks by graph vertex, so a graph
	// whose coarsening factor diverged from its vertex count cannot
	// travel; both CLI construction paths produce K == N graphs.
	if job.tg.K != job.tg.G.N() {
		return fmt.Errorf("-binary: the wire protocol cannot express a pre-coarsened task graph (K=%d over %d vertices); drop -binary to drive the engine directly", job.tg.K, job.tg.G.N())
	}
	srv := service.New(service.Config{})
	cl := client.InProcess(srv.Handler(), client.WithProtocol(client.ProtoBinary))
	ctx := context.Background()
	resp, err := cl.Map(ctx, service.MapRequest{
		Topology:    job.topo,
		Allocation:  service.AllocationSpec{Nodes: job.alloc.Nodes, ProcsPerNode: job.alloc.ProcsPerNode, Speeds: job.alloc.Speeds},
		Tasks:       taskSpec(job.tg),
		Mapper:      string(job.mapper),
		Seed:        job.seed,
		Rankfile:    job.rankFile != "" && job.delta == nil,
		Parallelism: job.workers,
		Trace:       job.traced,
		Balance:     job.balance,
	})
	if err != nil {
		return err
	}
	allocNodes := resp.AllocNodes
	if job.delta != nil {
		rres, err := cl.Remap(ctx, service.RemapRequest{
			Fingerprint:    resp.Fingerprint,
			Delta:          *job.delta,
			Solve:          topomap.Solve{Seed: job.seed, Trace: job.traced, Balance: job.balance},
			Objective:      job.obj,
			FenceThreshold: job.fence,
			Rankfile:       job.rankFile != "",
			Parallelism:    job.workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "remap: migrated %d tasks, reused %d/%d route pairs\n",
			rres.MigratedTasks, rres.PairsReused, rres.PairsTotal)
		switch {
		case rres.FenceTripped && !rres.Warm:
			fmt.Fprintf(stdout, "remap: fence tripped (prev %.6g, warm %.6g); cold fallback won at %.6g\n",
				rres.PrevScore, rres.WarmScore, rres.ColdScore)
		case rres.FenceTripped:
			fmt.Fprintf(stdout, "remap: fence tripped (prev %.6g, warm %.6g); warm still beat the cold fallback (%.6g)\n",
				rres.PrevScore, rres.WarmScore, rres.ColdScore)
		default:
			fmt.Fprintf(stdout, "remap: warm result kept (prev %.6g, warm %.6g)\n", rres.PrevScore, rres.WarmScore)
		}
		resp = &rres.MapResponse
		allocNodes = rres.AllocNodes
	}
	if job.rankFile != "" {
		if err := os.WriteFile(job.rankFile, []byte(resp.Rankfile), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote rank order to %s\n", job.rankFile)
	}
	m := resp.Metrics
	fmt.Fprintf(stdout, "tasks: %d   nodes: %d   network: %s\n", job.tg.K, len(allocNodes), job.net.Label)
	fmt.Fprintf(stdout, "mapper: %s\n", job.mapper)
	fmt.Fprintf(stdout, "TH  = %d\n", m.TH)
	fmt.Fprintf(stdout, "WH  = %d\n", m.WH)
	fmt.Fprintf(stdout, "MMC = %d\n", m.MMC)
	fmt.Fprintf(stdout, "MC  = %.6g\n", m.MC)
	fmt.Fprintf(stdout, "AMC = %.4f\n", m.AMC)
	fmt.Fprintf(stdout, "AC  = %.6g\n", m.AC)
	fmt.Fprintf(stdout, "used links = %d\n", m.UsedLinks)
	if job.tg.G.VW != nil || !job.alloc.UnitSpeeds() || job.balance {
		fmt.Fprintf(stdout, "makespan = %.6g\n", m.Makespan)
		fmt.Fprintf(stdout, "load imbalance = %.4f\n", m.LoadImbalance)
	}
	if job.traced && len(resp.Trace) > 0 {
		total := 0.0
		for _, st := range resp.Trace {
			if end := st.StartMS + st.DurMS; end > total {
				total = end
			}
		}
		fmt.Fprintf(stdout, "stages (%.3fms total):\n", total)
		fmt.Fprint(stdout, trace.Format(resp.Trace, total))
	}
	for g, n := range resp.NodeOf {
		fmt.Fprintf(stdout, "group %d -> node %d\n", g, n)
		if g > 20 {
			fmt.Fprintf(stdout, "... (%d more)\n", len(resp.NodeOf)-g-1)
			break
		}
	}
	return nil
}

// knownMapper reports whether the registry dispatches name.
func knownMapper(name topomap.Mapper) bool {
	for _, mp := range topomap.RegisteredMappers() {
		if mp == name {
			return true
		}
	}
	return false
}

// mapperList renders the registered mapper names for the -algo usage
// string — derived from the registry, never hand-maintained.
func mapperList() string {
	names := topomap.RegisteredMappers()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return strings.Join(out, " ")
}

// expandRunList parses comma-separated "value" or "valuexCount" terms
// (e.g. "8x16,1x48") into the expanded value list.
func expandRunList(s, flagName string) ([]string, error) {
	var out []string
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			return nil, fmt.Errorf("%s: empty term", flagName)
		}
		val, count := term, 1
		if i := strings.LastIndexByte(term, 'x'); i >= 0 {
			c, err := strconv.Atoi(term[i+1:])
			if err != nil || c < 1 {
				return nil, fmt.Errorf("%s: bad repeat count in term %q", flagName, term)
			}
			val, count = term[:i], c
		}
		for j := 0; j < count; j++ {
			out = append(out, val)
		}
	}
	return out, nil
}

// parseLoads expands a -loads run list into the per-task load vector.
func parseLoads(s string) ([]int64, error) {
	vals, err := expandRunList(s, "-loads")
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		l, err := strconv.ParseInt(v, 10, 64)
		if err != nil || l < 0 {
			return nil, fmt.Errorf("-loads: bad load %q (want a non-negative integer)", v)
		}
		out[i] = l
	}
	return out, nil
}

// parseCoords reads a -coords file: one "task x y [z]" line per task,
// every task exactly once, the first line fixing the dimensionality.
// Returns the dim and the task-major flattened coordinate vector.
func parseCoords(r io.Reader, n int) (int, []float64, error) {
	sc := bufio.NewScanner(r)
	dim := 0
	var coords []float64
	seen := make([]bool, n)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 && len(fields) != 4 {
			return 0, nil, fmt.Errorf("-coords line %d: want 'task x y [z]', got %d fields", line, len(fields))
		}
		if dim == 0 {
			dim = len(fields) - 1
			coords = make([]float64, n*dim)
		} else if len(fields)-1 != dim {
			return 0, nil, fmt.Errorf("-coords line %d: %dD point in a %dD file", line, len(fields)-1, dim)
		}
		t, err := strconv.Atoi(fields[0])
		if err != nil || t < 0 || t >= n {
			return 0, nil, fmt.Errorf("-coords line %d: bad task id %q (graph has %d tasks)", line, fields[0], n)
		}
		if seen[t] {
			return 0, nil, fmt.Errorf("-coords line %d: task %d listed twice", line, t)
		}
		seen[t] = true
		for d := 0; d < dim; d++ {
			c, err := strconv.ParseFloat(fields[d+1], 64)
			if err != nil {
				return 0, nil, fmt.Errorf("-coords line %d: bad coordinate %q", line, fields[d+1])
			}
			coords[t*dim+d] = c
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if dim == 0 {
		return 0, nil, fmt.Errorf("-coords: no coordinate lines")
	}
	for t, ok := range seen {
		if !ok {
			return 0, nil, fmt.Errorf("-coords: task %d has no coordinates", t)
		}
	}
	return dim, coords, nil
}

// parseSpeeds expands a -speeds run list into the per-node speed
// vector.
func parseSpeeds(s string) ([]float64, error) {
	vals, err := expandRunList(s, "-speeds")
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("-speeds: bad speed %q (want a positive number)", v)
		}
		out[i] = f
	}
	return out, nil
}

func parseDims(s string) ([3]int, error) {
	var dims [3]int
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return dims, fmt.Errorf("mapper: torus spec %q must be XxYxZ", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return dims, fmt.Errorf("mapper: bad torus dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

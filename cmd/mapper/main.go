// Command mapper maps an MPI task graph onto a network allocation and
// reports the mapping metrics — the end-user tool of the library. It
// drives the topology-generic Engine, so the same invocation works on
// a torus, a mesh, a k-ary fat tree or a canonical dragonfly.
//
// The task graph is read from a file of whitespace-separated lines
// "src dst volume" (directed edges, 0-based task ids), or generated
// from a dataset matrix with -matrix/-partitioner.
//
// Examples:
//
//	mapper -matrix cagelike -procs 256 -algo UWH -torus 8x8x8
//	mapper -graph app.tgraph -algo UMC -torus 16x12x16
//	mapper -matrix cagelike -procs 256 -algo UWH -topology fattree -fattree-k 8
//	mapper -matrix cagelike -procs 256 -algo UMC -topology dragonfly -dragonfly-h 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	topomap "repro"
)

func main() {
	graphPath := flag.String("graph", "", "task graph file (src dst volume per line)")
	matName := flag.String("matrix", "", "dataset matrix to partition instead of -graph")
	partName := flag.String("partitioner", "PATOH", "partitioner personality for -matrix")
	procs := flag.Int("procs", 256, "number of MPI processes (with -matrix)")
	algo := flag.String("algo", "UWH", "mapper: "+mapperList())
	topoKind := flag.String("topology", "torus", "network family: torus, fattree, dragonfly")
	torusSpec := flag.String("torus", "8x8x8", "torus dimensions XxYxZ (with -topology torus)")
	mesh := flag.Bool("mesh", false, "use a mesh (no wraparound) instead of a torus")
	ftK := flag.Int("fattree-k", 8, "fat-tree arity k (even; k³/4 hosts, with -topology fattree)")
	ftTaper := flag.Float64("fattree-taper", 2, "fat-tree per-level bandwidth taper (1 = full bisection)")
	dfH := flag.Int("dragonfly-h", 3, "dragonfly global links per router (with -topology dragonfly)")
	seed := flag.Int64("seed", 1, "random seed (allocation, partitioner)")
	tier := flag.String("tier", "small", "dataset tier with -matrix: tiny, small, large")
	allocFile := flag.String("allocfile", "", "read the allocation from a node-list file (node [procs] lines) instead of generating one")
	rankFile := flag.String("rankfile", "", "write a Cray-style MPICH_RANK_ORDER file realizing the mapping")
	viz := flag.Bool("viz", false, "render the congestion histogram, hottest links and torus slice maps")
	flag.Parse()

	net, err := buildTopology(*topoKind, *torusSpec, *mesh, *ftK, *ftTaper, *dfH)
	if err != nil {
		fail(err)
	}

	var tg *topomap.TaskGraph
	switch {
	case *matName != "":
		t := topomap.Small
		switch strings.ToLower(*tier) {
		case "tiny":
			t = topomap.Tiny
		case "large":
			t = topomap.Large
		}
		m, err := topomap.GenerateMatrix(*matName, t)
		if err != nil {
			fail(err)
		}
		part, err := topomap.PartitionMatrix(topomap.Partitioner(*partName), m, *procs, *seed)
		if err != nil {
			fail(err)
		}
		tg, err = topomap.BuildTaskGraph(m, part, *procs)
		if err != nil {
			fail(err)
		}
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			fail(err)
		}
		tg, err = topomap.ReadTaskGraph(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -graph or -matrix"))
	}

	var a *topomap.Allocation
	if *allocFile != "" {
		f, err := os.Open(*allocFile)
		if err != nil {
			fail(err)
		}
		a, err = topomap.ReadNodeList(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		for _, n := range a.Nodes {
			if int(n) >= net.hosts {
				fail(fmt.Errorf("allocfile node %d outside the %d placement-eligible nodes of the %s", n, net.hosts, net.label))
			}
		}
	} else {
		nodes := (tg.K + 15) / 16
		a, err = net.sparseAlloc(nodes, *seed)
		if err != nil {
			fail(err)
		}
	}

	eng, err := topomap.NewEngine(net.topo, a)
	if err != nil {
		fail(err)
	}
	res, err := eng.Run(topomap.Request{
		Mapper: topomap.Mapper(strings.ToUpper(*algo)),
		Tasks:  tg,
		Seed:   *seed,
	})
	if err != nil {
		fail(err)
	}
	if *rankFile != "" {
		f, err := os.Create(*rankFile)
		if err != nil {
			fail(err)
		}
		err = topomap.WriteRankOrder(f, res.Placement(), a)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote rank order to %s\n", *rankFile)
	}
	m := res.Metrics
	fmt.Printf("tasks: %d   nodes: %d   network: %s\n", tg.K, a.NumNodes(), net.label)
	fmt.Printf("mapper: %s\n", strings.ToUpper(*algo))
	fmt.Printf("TH  = %d\n", m.TH)
	fmt.Printf("WH  = %d\n", m.WH)
	fmt.Printf("MMC = %d\n", m.MMC)
	fmt.Printf("MC  = %.6g\n", m.MC)
	fmt.Printf("AMC = %.4f\n", m.AMC)
	fmt.Printf("AC  = %.6g\n", m.AC)
	fmt.Printf("used links = %d\n", m.UsedLinks)
	for g, n := range res.NodeOf {
		fmt.Printf("group %d -> node %d\n", g, n)
		if g > 20 {
			fmt.Printf("... (%d more)\n", len(res.NodeOf)-g-1)
			break
		}
	}
	if *viz {
		fmt.Println()
		if err := topomap.RenderCongestionHistogram(os.Stdout, tg, net.topo, res.Placement(), 10); err != nil {
			fail(err)
		}
		if t, ok := net.topo.(*topomap.Torus); ok {
			fmt.Println()
			if err := topomap.RenderTopLinks(os.Stdout, tg, t, res.Placement(), 10); err != nil {
				fail(err)
			}
			fmt.Println()
			for z := 0; z < t.Dims()[2]; z++ {
				if err := topomap.RenderSliceMap(os.Stdout, t, a, res.Coarse, res.NodeOf, z); err != nil {
					fail(err)
				}
			}
		}
	}
}

// network bundles a topology with its placement-host count and its
// sparse-allocation generator, so the main flow is topology-agnostic.
type network struct {
	topo        topomap.Topology
	label       string
	hosts       int // placement-eligible node ids are 0..hosts-1
	sparseAlloc func(nodes int, seed int64) (*topomap.Allocation, error)
}

// buildTopology constructs the network selected by -topology.
func buildTopology(kind, torusSpec string, mesh bool, ftK int, ftTaper float64, dfH int) (*network, error) {
	switch strings.ToLower(kind) {
	case "torus":
		dims, err := parseDims(torusSpec)
		if err != nil {
			return nil, err
		}
		bw := []float64{9.38e9, 4.68e9, 9.38e9} // Hopper-like heterogeneous links
		var t *topomap.Torus
		label := "torus " + torusSpec
		if mesh {
			t = topomap.NewTorusMesh(dims[:], bw)
			label = "mesh " + torusSpec
		} else {
			t = topomap.NewTorus(dims[:], bw)
		}
		return &network{
			topo:  t,
			label: label,
			hosts: t.Nodes(),
			sparseAlloc: func(nodes int, seed int64) (*topomap.Allocation, error) {
				return topomap.SparseAllocation(t, nodes, seed)
			},
		}, nil
	case "fattree":
		ft, err := topomap.NewFatTree(ftK, 10e9, ftTaper)
		if err != nil {
			return nil, err
		}
		return &network{
			topo:  ft,
			label: fmt.Sprintf("fat tree k=%d (%d hosts)", ftK, ft.Hosts()),
			hosts: ft.Hosts(),
			sparseAlloc: func(nodes int, seed int64) (*topomap.Allocation, error) {
				return topomap.FatTreeSparseHosts(ft, nodes, seed)
			},
		}, nil
	case "dragonfly":
		d, err := topomap.NewDragonfly(dfH, 10e9, 5e9, 4e9)
		if err != nil {
			return nil, err
		}
		return &network{
			topo:  d,
			label: fmt.Sprintf("dragonfly h=%d (%d hosts)", dfH, d.Hosts()),
			hosts: d.Hosts(),
			sparseAlloc: func(nodes int, seed int64) (*topomap.Allocation, error) {
				return topomap.DragonflySparseHosts(d, nodes, seed)
			},
		}, nil
	}
	return nil, fmt.Errorf("mapper: unknown -topology %q (want torus, fattree or dragonfly)", kind)
}

// mapperList renders the registered mapper names for the -algo usage
// string — derived from the registry, never hand-maintained.
func mapperList() string {
	names := topomap.RegisteredMappers()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return strings.Join(out, " ")
}

func parseDims(s string) ([3]int, error) {
	var dims [3]int
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return dims, fmt.Errorf("mapper: torus spec %q must be XxYxZ", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return dims, fmt.Errorf("mapper: bad torus dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mapper:", err)
	os.Exit(1)
}

package main

import (
	"strings"
	"testing"

	topomap "repro"
)

func TestParseDims(t *testing.T) {
	dims, err := parseDims("8x8x8")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{8, 8, 8} {
		t.Fatalf("dims = %v", dims)
	}
	dims, err = parseDims("16X12x24")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{16, 12, 24} {
		t.Fatalf("dims = %v", dims)
	}
	for _, bad := range []string{"8x8", "axbxc", "8x8x0", "", "8x8x8x8"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("parseDims(%q): expected error", bad)
		}
	}
}

func TestBuildTopologyFamilies(t *testing.T) {
	cases := []struct {
		kind  string
		hosts int
	}{
		{"torus", 6 * 6 * 6},
		{"fattree", 8 * 8 * 8 / 4},
		{"dragonfly", 19 * 6 * 3}, // h=3: (2h²+1) groups × 2h routers × h hosts
	}
	for _, cs := range cases {
		net, err := buildTopology(cs.kind, "6x6x6", false, 8, 2, 3)
		if err != nil {
			t.Fatalf("%s: %v", cs.kind, err)
		}
		if net.Hosts != cs.hosts {
			t.Fatalf("%s: hosts = %d, want %d", cs.kind, net.Hosts, cs.hosts)
		}
		a, err := net.SparseAlloc(4, 1)
		if err != nil {
			t.Fatalf("%s: alloc: %v", cs.kind, err)
		}
		if a.NumNodes() != 4 {
			t.Fatalf("%s: alloc has %d nodes", cs.kind, a.NumNodes())
		}
		if _, err := topomap.NewEngine(net.Topo, a); err != nil {
			t.Fatalf("%s: NewEngine: %v", cs.kind, err)
		}
	}
	if _, err := buildTopology("hypercube", "6x6x6", false, 8, 2, 3); err == nil {
		t.Fatal("expected error for unknown topology kind")
	}
}

// TestEndToEndPerTopology drives the full mapper pipeline on every
// topology family the CLI exposes — the -topology satellite's
// acceptance: one Request path, three networks.
func TestEndToEndPerTopology(t *testing.T) {
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 64
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"torus", "fattree", "dragonfly"} {
		net, err := buildTopology(kind, "6x6x6", false, 8, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		a, err := net.SparseAlloc((procs+15)/16, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		eng, err := topomap.NewEngine(net.Topo, a)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Metrics.WH <= 0 {
			t.Fatalf("%s: degenerate WH %d", kind, res.Metrics.WH)
		}
	}
}

// TestRunExitCodes pins the CLI contract: bad inputs — unknown
// mapper or topology names above all — exit non-zero with a
// diagnostic on stderr, and a good run exits 0. The unknown-mapper
// case must fail fast, before the matrix/partitioner pipeline runs.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{
			name:     "unknown mapper",
			args:     []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "NOPE"},
			wantCode: 1,
			wantErr:  "unknown mapper",
		},
		{
			name:     "unknown topology",
			args:     []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-topology", "hypercube"},
			wantCode: 1,
			wantErr:  "unknown kind",
		},
		{
			name:     "missing input",
			args:     []string{"-algo", "UWH"},
			wantCode: 1,
			wantErr:  "need -graph or -matrix",
		},
		{
			name:     "unknown matrix",
			args:     []string{"-matrix", "no-such-dataset", "-tier", "tiny", "-procs", "64"},
			wantCode: 1,
		},
		{
			name:     "bad flag",
			args:     []string{"-no-such-flag"},
			wantCode: 2,
		},
		{
			name:     "good run",
			args:     []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "uwh", "-torus", "6x6x6"},
			wantCode: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.wantErr)
			}
			if tc.wantCode == 0 && !strings.Contains(stdout.String(), "WH  =") {
				t.Fatalf("good run printed no metrics:\n%s", stdout.String())
			}
		})
	}
}

func TestMapperListDerivedFromRegistry(t *testing.T) {
	list := mapperList()
	for _, mp := range topomap.Mappers() {
		if !strings.Contains(list, string(mp)) {
			t.Fatalf("mapper list %q missing %s", list, mp)
		}
	}
}

// TestRunWorkersFlag: -workers changes the solve's parallelism only;
// the printed metrics and mapping lines must be identical at any
// worker count.
func TestRunWorkersFlag(t *testing.T) {
	base := []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "umc", "-torus", "6x6x6"}
	outputs := make([]string, 0, 3)
	for _, w := range []string{"1", "4", "0"} {
		var stdout, stderr strings.Builder
		if code := run(append([]string{"-workers", w}, base...), &stdout, &stderr); code != 0 {
			t.Fatalf("-workers %s: exit %d (stderr: %s)", w, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("output diverged between -workers settings:\n%s\nvs\n%s", outputs[0], outputs[i])
		}
	}
}

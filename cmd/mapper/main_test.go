package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	topomap "repro"
)

func TestParseDims(t *testing.T) {
	dims, err := parseDims("8x8x8")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{8, 8, 8} {
		t.Fatalf("dims = %v", dims)
	}
	dims, err = parseDims("16X12x24")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{16, 12, 24} {
		t.Fatalf("dims = %v", dims)
	}
	for _, bad := range []string{"8x8", "axbxc", "8x8x0", "", "8x8x8x8"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("parseDims(%q): expected error", bad)
		}
	}
}

func TestBuildTopologyFamilies(t *testing.T) {
	cases := []struct {
		kind  string
		hosts int
	}{
		{"torus", 6 * 6 * 6},
		{"fattree", 8 * 8 * 8 / 4},
		{"dragonfly", 19 * 6 * 3}, // h=3: (2h²+1) groups × 2h routers × h hosts
	}
	for _, cs := range cases {
		net, err := buildTopology(cs.kind, "6x6x6", false, 8, 2, 3)
		if err != nil {
			t.Fatalf("%s: %v", cs.kind, err)
		}
		if net.Hosts != cs.hosts {
			t.Fatalf("%s: hosts = %d, want %d", cs.kind, net.Hosts, cs.hosts)
		}
		a, err := net.SparseAlloc(4, 1)
		if err != nil {
			t.Fatalf("%s: alloc: %v", cs.kind, err)
		}
		if a.NumNodes() != 4 {
			t.Fatalf("%s: alloc has %d nodes", cs.kind, a.NumNodes())
		}
		if _, err := topomap.NewEngine(net.Topo, a); err != nil {
			t.Fatalf("%s: NewEngine: %v", cs.kind, err)
		}
	}
	if _, err := buildTopology("hypercube", "6x6x6", false, 8, 2, 3); err == nil {
		t.Fatal("expected error for unknown topology kind")
	}
}

// TestEndToEndPerTopology drives the full mapper pipeline on every
// topology family the CLI exposes — the -topology satellite's
// acceptance: one Request path, three networks.
func TestEndToEndPerTopology(t *testing.T) {
	m, err := topomap.GenerateMatrix("cagelike", topomap.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 64
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"torus", "fattree", "dragonfly"} {
		net, err := buildTopology(kind, "6x6x6", false, 8, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		a, err := net.SparseAlloc((procs+15)/16, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		eng, err := topomap.NewEngine(net.Topo, a)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Metrics.WH <= 0 {
			t.Fatalf("%s: degenerate WH %d", kind, res.Metrics.WH)
		}
	}
}

// TestRunExitCodes pins the CLI contract: bad inputs — unknown
// mapper or topology names above all — exit non-zero with a
// diagnostic on stderr, and a good run exits 0. The unknown-mapper
// case must fail fast, before the matrix/partitioner pipeline runs.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{
			name:     "unknown mapper",
			args:     []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "NOPE"},
			wantCode: 1,
			wantErr:  "unknown mapper",
		},
		{
			name:     "unknown topology",
			args:     []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-topology", "hypercube"},
			wantCode: 1,
			wantErr:  "unknown kind",
		},
		{
			name:     "missing input",
			args:     []string{"-algo", "UWH"},
			wantCode: 1,
			wantErr:  "need -graph or -matrix",
		},
		{
			name:     "unknown matrix",
			args:     []string{"-matrix", "no-such-dataset", "-tier", "tiny", "-procs", "64"},
			wantCode: 1,
		},
		{
			name:     "bad flag",
			args:     []string{"-no-such-flag"},
			wantCode: 2,
		},
		{
			name:     "good run",
			args:     []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "uwh", "-torus", "6x6x6"},
			wantCode: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.wantErr)
			}
			if tc.wantCode == 0 && !strings.Contains(stdout.String(), "WH  =") {
				t.Fatalf("good run printed no metrics:\n%s", stdout.String())
			}
		})
	}
}

func TestMapperListDerivedFromRegistry(t *testing.T) {
	list := mapperList()
	for _, mp := range topomap.Mappers() {
		if !strings.Contains(list, string(mp)) {
			t.Fatalf("mapper list %q missing %s", list, mp)
		}
	}
}

// TestRunRemapFlag drives the -remap surface: a node-swap delta
// (kill one allocated node, hand over a fresh one) remaps the solved
// mapping incrementally, printing the migration and route-pair-reuse
// accounting before the post-delta metrics; malformed and empty
// deltas fail fast.
func TestRunRemapFlag(t *testing.T) {
	base := []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "uwh", "-torus", "6x6x6"}
	var stdout, stderr strings.Builder
	if code := run(base, &stdout, &stderr); code != 0 {
		t.Fatalf("base run exit %d (stderr: %s)", code, stderr.String())
	}
	// Recover the allocated node set from the mapping lines, pick one
	// to kill and one free node to hand over in its place.
	allocated := map[int]bool{}
	for _, line := range strings.Split(stdout.String(), "\n") {
		var g, n int
		if _, err := fmt.Sscanf(line, "group %d -> node %d", &g, &n); err == nil {
			allocated[n] = true
		}
	}
	if len(allocated) == 0 {
		t.Fatalf("no mapping lines in base output:\n%s", stdout.String())
	}
	dead := -1
	for n := range allocated {
		if dead < 0 || n < dead {
			dead = n
		}
	}
	fresh := 0
	for allocated[fresh] {
		fresh++
	}
	delta := fmt.Sprintf(`{"remove":[%d],"add":[{"node":%d,"procs":16}]}`, dead, fresh)

	stdout.Reset()
	stderr.Reset()
	if code := run(append([]string{"-remap", delta, "-objective", "wh"}, base...), &stdout, &stderr); code != 0 {
		t.Fatalf("remap run exit %d (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"remap: migrated", "route pairs", "WH  ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("remap output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("node %d", fresh)) {
		t.Fatalf("post-delta mapping never uses the added node %d:\n%s", fresh, out)
	}

	// Fail-fast validation.
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-remap", "{bad"}, "bad -remap delta"},
		{[]string{"-remap", "{}"}, "changes nothing"},
		{[]string{"-remap", `{"remove":[999]}`}, "not allocated"},
	} {
		stdout.Reset()
		stderr.Reset()
		if code := run(append(tc.args, base...), &stdout, &stderr); code != 1 {
			t.Fatalf("%v: exit %d, want 1", tc.args, code)
		}
		if !strings.Contains(stderr.String(), tc.wantErr) {
			t.Fatalf("%v: stderr %q does not mention %q", tc.args, stderr.String(), tc.wantErr)
		}
	}

	// Identical output at any -workers setting, like every other path.
	outputs := make([]string, 0, 2)
	for _, w := range []string{"1", "4"} {
		stdout.Reset()
		stderr.Reset()
		args := append([]string{"-workers", w, "-remap", delta}, base...)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("-workers %s: exit %d (stderr: %s)", w, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("remap output diverged between -workers settings:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestRunBinaryFlag pins the -binary contract: routing the solve (and
// remap) through an in-process mapd over /v2 binary frames prints
// byte-identical output to driving the engine directly — mapping,
// metrics, remap accounting and the rankfile all survive the wire —
// while the combinations the wire cannot express fail fast.
func TestRunBinaryFlag(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "ring.tgraph")
	var gb strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&gb, "%d %d %d\n", i, (i+1)%64, (i%7)+2)
	}
	gb.WriteString("0 32 9\n")
	if err := os.WriteFile(gpath, []byte(gb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{"-graph", gpath, "-algo", "uwh", "-torus", "6x6x6"}

	runArgs := func(args ...string) (int, string, string) {
		var stdout, stderr strings.Builder
		code := run(append(args, base...), &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	code, direct, errOut := runArgs()
	if code != 0 {
		t.Fatalf("direct run exit %d (stderr: %s)", code, errOut)
	}
	code, wired, errOut := runArgs("-binary")
	if code != 0 {
		t.Fatalf("-binary run exit %d (stderr: %s)", code, errOut)
	}
	if wired != direct {
		t.Fatalf("-binary output diverged from the direct path:\n%s\nvs\n%s", direct, wired)
	}

	// Remap + rankfile round trip: recover an allocated node from the
	// mapping lines, swap it for a free one, and compare both the
	// printed report (rankfile paths normalized) and the rankfile text.
	allocated := map[int]bool{}
	for _, line := range strings.Split(direct, "\n") {
		var g, n int
		if _, err := fmt.Sscanf(line, "group %d -> node %d", &g, &n); err == nil {
			allocated[n] = true
		}
	}
	if len(allocated) == 0 {
		t.Fatalf("no mapping lines in direct output:\n%s", direct)
	}
	dead := -1
	for n := range allocated {
		if dead < 0 || n < dead {
			dead = n
		}
	}
	fresh := 0
	for allocated[fresh] {
		fresh++
	}
	delta := fmt.Sprintf(`{"remove":[%d],"add":[{"node":%d,"procs":16}]}`, dead, fresh)
	outputs := make([]string, 0, 2)
	ranks := make([]string, 0, 2)
	for _, mode := range [][]string{nil, {"-binary"}} {
		rf := filepath.Join(dir, fmt.Sprintf("rank%d", len(outputs)))
		args := append([]string{"-remap", delta, "-objective", "wh", "-rankfile", rf}, mode...)
		code, out, errOut := runArgs(args...)
		if code != 0 {
			t.Fatalf("%v: exit %d (stderr: %s)", args, code, errOut)
		}
		outputs = append(outputs, strings.ReplaceAll(out, rf, "RANKFILE"))
		rank, err := os.ReadFile(rf)
		if err != nil {
			t.Fatal(err)
		}
		ranks = append(ranks, string(rank))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-binary remap output diverged:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	if ranks[0] != ranks[1] {
		t.Fatalf("-binary rankfile diverged:\n%s\nvs\n%s", ranks[0], ranks[1])
	}

	// The trace travels back over the wire as the same stage timeline.
	if code, out, errOut := runArgs("-binary", "-trace"); code != 0 || !strings.Contains(out, "stages (") {
		t.Fatalf("-binary -trace: exit %d, output:\n%s\nstderr: %s", code, out, errOut)
	}

	// Per-task loads travel over the wire now: a -matrix graph (non-unit
	// loads from the partition) prints byte-identical output through
	// -binary, makespan lines included.
	matArgs := []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "uwh", "-torus", "6x6x6"}
	matOutputs := make([]string, 0, 2)
	for _, mode := range [][]string{nil, {"-binary"}} {
		var stdout, stderr strings.Builder
		args := append(append([]string(nil), mode...), matArgs...)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("%v: exit %d (stderr: %s)", args, code, stderr.String())
		}
		matOutputs = append(matOutputs, stdout.String())
	}
	if matOutputs[0] != matOutputs[1] {
		t.Fatalf("-binary -matrix output diverged from the direct path:\n%s\nvs\n%s", matOutputs[0], matOutputs[1])
	}
	if !strings.Contains(matOutputs[0], "makespan = ") {
		t.Fatalf("-matrix run (non-unit loads) did not report makespan:\n%s", matOutputs[0])
	}

	// Fail fast on what the wire cannot express: portfolio racing and
	// the viz renderings.
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-binary", "-portfolio", "all"}, "drop -binary or -portfolio"},
		{[]string{"-binary", "-viz"}, "drop -binary or -viz"},
	} {
		code, _, errOut := runArgs(tc.args...)
		if code != 1 {
			t.Fatalf("%v: exit %d, want 1", tc.args, code)
		}
		if !strings.Contains(errOut, tc.wantErr) {
			t.Fatalf("%v: stderr %q does not mention %q", tc.args, errOut, tc.wantErr)
		}
	}
}

// TestRunWorkersFlag: -workers changes the solve's parallelism only;
// the printed metrics and mapping lines must be identical at any
// worker count.
func TestRunWorkersFlag(t *testing.T) {
	base := []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-algo", "umc", "-torus", "6x6x6"}
	outputs := make([]string, 0, 3)
	for _, w := range []string{"1", "4", "0"} {
		var stdout, stderr strings.Builder
		if code := run(append([]string{"-workers", w}, base...), &stdout, &stderr); code != 0 {
			t.Fatalf("-workers %s: exit %d (stderr: %s)", w, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("output diverged between -workers settings:\n%s\nvs\n%s", outputs[0], outputs[i])
		}
	}
}

// TestRunPortfolioFlag drives the -portfolio/-objective surface: a
// portfolio run prints the leaderboard and the winner's metrics, bad
// candidate and objective names fail fast, and the printed output is
// identical at any -workers setting.
func TestRunPortfolioFlag(t *testing.T) {
	base := []string{"-matrix", "cagelike", "-tier", "tiny", "-procs", "64", "-torus", "6x6x6"}
	var stdout, stderr strings.Builder
	code := run(append([]string{"-portfolio", "DEF,UG,UWH,UMC,UMMC,SMAP", "-objective", "mc"}, base...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("portfolio run exit %d (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"portfolio: 6 candidates, objective mc", "#1 ", "winner: ", "WH  ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("portfolio output missing %q:\n%s", want, out)
		}
	}

	// -portfolio all expands to every compatible registered mapper.
	stdout.Reset()
	stderr.Reset()
	if code := run(append([]string{"-portfolio", "all"}, base...), &stdout, &stderr); code != 0 {
		t.Fatalf("-portfolio all exit %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "winner: ") {
		t.Fatalf("-portfolio all printed no winner:\n%s", stdout.String())
	}

	// Fail-fast validation, before the matrix pipeline runs.
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-portfolio", "UWH,NOPE"}, "unknown portfolio mapper"},
		{[]string{"-portfolio", "all", "-objective", "latency"}, "unknown objective metric"},
		{[]string{"-portfolio", "all", "-objective", "mc:bad"}, "objective weight"},
		{[]string{"-portfolio", "UWH,UWH"}, "duplicate"},
		{[]string{"-portfolio", "all", "-objective", "sim_seconds"}, "simulation spec"},
		{[]string{"-objective", "mc"}, "add -portfolio"},
	} {
		stdout.Reset()
		stderr.Reset()
		if code := run(append(tc.args, base...), &stdout, &stderr); code != 1 {
			t.Fatalf("%v: exit %d, want 1", tc.args, code)
		}
		if !strings.Contains(stderr.String(), tc.wantErr) {
			t.Fatalf("%v: stderr %q does not mention %q", tc.args, stderr.String(), tc.wantErr)
		}
	}

	// Deterministic across -workers.
	outputs := make([]string, 0, 2)
	for _, w := range []string{"1", "4"} {
		stdout.Reset()
		stderr.Reset()
		args := append([]string{"-workers", w, "-portfolio", "DEF,UG,UWH,UMC", "-objective", "wh"}, base...)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("-workers %s: exit %d (stderr: %s)", w, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("portfolio output diverged between -workers settings:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

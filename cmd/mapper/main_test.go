package main

import "testing"

func TestParseDims(t *testing.T) {
	dims, err := parseDims("8x8x8")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{8, 8, 8} {
		t.Fatalf("dims = %v", dims)
	}
	dims, err = parseDims("16X12x24")
	if err != nil {
		t.Fatal(err)
	}
	if dims != [3]int{16, 12, 24} {
		t.Fatalf("dims = %v", dims)
	}
	for _, bad := range []string{"8x8", "axbxc", "8x8x0", "", "8x8x8x8"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("parseDims(%q): expected error", bad)
		}
	}
}

// Command experiments regenerates the tables and figures of the
// paper's evaluation (§IV). Each figure/table of the paper has a
// corresponding flag; -all runs everything.
//
// Usage:
//
//	experiments -fig 1          # Figure 1 (partition metrics)
//	experiments -fig 2          # Figure 2 (mapping metrics)
//	experiments -fig 3          # Figure 3 (mapping times)
//	experiments -fig 4a|4b      # Figure 4 (comm-only times)
//	experiments -fig 5          # Figure 5 (SpMV times)
//	experiments -table 1        # Table I  (summary)
//	experiments -regress        # §IV-E regression analysis
//	experiments -ablations      # extension ablations (UML, UMCA; DESIGN.md §7)
//	experiments -all            # everything above
//	experiments -all -tiny      # quick smoke run (seconds)
//	experiments -all -paper     # paper-scale run (hours)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1, 2, 3, 4a, 4b, 5")
	table := flag.String("table", "", "table to regenerate: 1")
	regress := flag.Bool("regress", false, "run the §IV-E regression analysis")
	ablations := flag.Bool("ablations", false, "run the extension ablations (multilevel UML, adaptive UMCA)")
	all := flag.Bool("all", false, "run every figure, table and analysis")
	tiny := flag.Bool("tiny", false, "tiny smoke-test scale (seconds)")
	paper := flag.Bool("paper", false, "paper scale (hours)")
	verbose := flag.Bool("v", false, "print progress lines")
	flag.Parse()

	cfg := exp.DefaultConfig()
	if *tiny {
		cfg = exp.TinyConfig()
	}
	if *paper {
		cfg = exp.PaperConfig()
	}
	cfg.Out = os.Stdout
	if *verbose {
		cfg.Progress = os.Stderr
	}

	// One shared suite so a -all run partitions each case only once.
	suite := exp.NewSuite(cfg)
	type job struct {
		name string
		run  func() (string, error)
	}
	var jobs []job
	add := func(name string, run func() (string, error)) {
		jobs = append(jobs, job{name, run})
	}
	wantFig := strings.ToLower(*fig)
	if *all || wantFig == "1" {
		add("figure 1", suite.Figure1)
	}
	if *all || wantFig == "2" {
		add("figure 2", suite.Figure2)
	}
	if *all || wantFig == "3" {
		add("figure 3", suite.Figure3)
	}
	if *all || wantFig == "4a" || wantFig == "4" {
		add("figure 4a", func() (string, error) { return suite.Figure4("a") })
	}
	if *all || wantFig == "4b" || wantFig == "4" {
		add("figure 4b", func() (string, error) { return suite.Figure4("b") })
	}
	if *all || wantFig == "5" {
		add("figure 5", suite.Figure5)
	}
	if *all || *table == "1" {
		add("table I", suite.Table1)
	}
	if *all || *regress {
		add("regression", suite.Regression)
	}
	if *all || *ablations {
		add("ablations", func() (string, error) { return exp.Ablations(cfg) })
	}
	if len(jobs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, j := range jobs {
		start := time.Now()
		out, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n\n", j.name, time.Since(start).Seconds())
	}
}

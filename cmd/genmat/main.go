// Command genmat materializes the synthetic 25-matrix dataset as
// MatrixMarket files, so the workloads can be inspected or fed to
// external tools.
//
// Usage:
//
//	genmat -out /tmp/dataset -tier tiny
//	genmat -out /tmp/dataset -only cagelike,rgg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/matrix"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	tier := flag.String("tier", "tiny", "size tier: tiny, small, large")
	only := flag.String("only", "", "comma-separated subset of matrix names")
	flag.Parse()

	var t gen.Tier
	switch strings.ToLower(*tier) {
	case "tiny":
		t = gen.Tiny
	case "small":
		t = gen.Small
	case "large":
		t = gen.Large
	default:
		fail(fmt.Errorf("unknown tier %q", *tier))
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, spec := range gen.Dataset() {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		m := spec.Generate(t)
		path := filepath.Join(*out, spec.Name+".mtx")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := matrix.WriteMatrixMarket(f, m); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("%-16s %-22s %8d rows %10d nnz  -> %s\n",
			spec.Name, spec.Class, m.Rows, m.NNZ(), path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genmat:", err)
	os.Exit(1)
}

// Command genmat materializes the synthetic 25-matrix dataset as
// MatrixMarket files, so the workloads can be inspected or fed to
// external tools.
//
// Usage:
//
//	genmat -out /tmp/dataset -tier tiny
//	genmat -out /tmp/dataset -only cagelike,rgg
//	genmat -out /tmp/dataset -mlpipe 24x16 -seed 7
//	genmat -out /tmp/dataset -stencil 16x16x16
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/taskgraph"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	tier := flag.String("tier", "tiny", "size tier: tiny, small, large")
	only := flag.String("only", "", "comma-separated subset of matrix names")
	mlpipe := flag.String("mlpipe", "", "emit an inference-pipeline task graph (stages x width, e.g. 24x16) with skewed per-task loads instead of the matrix dataset")
	stencil := flag.String("stencil", "", "emit a halo-exchange stencil task graph with per-task grid coordinates (NXxNY for 2D, NXxNYxNZ for 3D, e.g. 16x16x16) instead of the matrix dataset")
	seed := flag.Int64("seed", 1, "load-jitter seed for -mlpipe")
	flag.Parse()

	if *mlpipe != "" {
		if err := writeMLPipe(*out, *mlpipe, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *stencil != "" {
		if err := writeStencil(*out, *stencil); err != nil {
			fail(err)
		}
		return
	}

	var t gen.Tier
	switch strings.ToLower(*tier) {
	case "tiny":
		t = gen.Tiny
	case "small":
		t = gen.Small
	case "large":
		t = gen.Large
	default:
		fail(fmt.Errorf("unknown tier %q", *tier))
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, spec := range gen.Dataset() {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		m := spec.Generate(t)
		path := filepath.Join(*out, spec.Name+".mtx")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := matrix.WriteMatrixMarket(f, m); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("%-16s %-22s %8d rows %10d nnz  -> %s\n",
			spec.Name, spec.Class, m.Rows, m.NNZ(), path)
	}
}

// writeMLPipe generates the stage-parallel inference-pipeline task
// graph and writes it in the text edge-list format (with "# load"
// lines) cmd/mapper -graph reads back.
func writeMLPipe(out, spec string, seed int64) error {
	parts := strings.Split(strings.ToLower(spec), "x")
	if len(parts) != 2 {
		return fmt.Errorf("-mlpipe spec %q must be STAGESxWIDTH", spec)
	}
	stages, err1 := strconv.Atoi(parts[0])
	width, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("-mlpipe spec %q must be STAGESxWIDTH", spec)
	}
	tg, err := taskgraph.MLPipe(stages, width, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(out, fmt.Sprintf("mlpipe_%dx%d.tgraph", stages, width))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tg.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-16s %-22s %8d tasks %10d edges -> %s\n",
		fmt.Sprintf("mlpipe_%dx%d", stages, width), "inference pipeline", tg.K, tg.G.M(), path)
	return nil
}

// stencilHaloVolume is the communication volume of each face exchange
// in a -stencil graph — one fixed halo size, so the graph is fully
// determined by its grid dimensions.
const stencilHaloVolume = 8

// writeStencil generates the structured-grid halo-exchange task graph
// and writes it in the text edge-list format; the per-task grid
// coordinates travel as "# coord" lines, so cmd/mapper -graph hands
// the geometric mappers (GEOM, SFCM) their geometry with no extra
// flag.
func writeStencil(out, spec string) error {
	parts := strings.Split(strings.ToLower(spec), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return fmt.Errorf("-stencil spec %q must be NXxNY or NXxNYxNZ", spec)
	}
	dims := [3]int{1, 1, 1}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return fmt.Errorf("-stencil spec %q: bad dimension %q", spec, p)
		}
		dims[i] = v
	}
	tg, err := taskgraph.Stencil(dims[0], dims[1], dims[2], stencilHaloVolume)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("stencil_%s", strings.Join(parts, "x"))
	path := filepath.Join(out, name+".tgraph")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tg.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-16s %-22s %8d tasks %10d edges -> %s\n",
		name, fmt.Sprintf("%dD halo exchange", tg.Dim), tg.K, tg.G.M(), path)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genmat:", err)
	os.Exit(1)
}

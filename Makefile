# The canonical tier-1 gate (see ROADMAP.md): `make check` is what CI
# and every PR must keep green. Individual stages are separate targets.

GO ?= go

.PHONY: check fmt vet build test bench race

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Bench smoke: one iteration of the engine benchmarks proves the
# service API's hot path still runs; full numbers via `go test -bench=.`.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEngine' -benchtime=1x .

race:
	$(GO) test -race -run='Engine|Batch' .

# The canonical tier-1 gate (see ROADMAP.md): `make check` is what CI
# and every PR must keep green. Individual stages are separate targets.

GO ?= go

.PHONY: check fmt vet build test bench bench-json race docs traceguard fuzz-smoke cover

# check includes docs, whose recipe runs `go vet ./...` — listing vet
# here too would vet the module twice per gate.
check: fmt build test traceguard fuzz-smoke docs

# Fuzz smoke: a few hundred executions of each binary-frame fuzz
# target — enough for the seed corpus plus mutations to walk every
# decoder, cheap enough for every `make check`. Go allows one -fuzz
# pattern per invocation, hence the loop. Longer runs: raise
# -fuzztime (e.g. `go test ./internal/wirebin -fuzz=FuzzFrameDecoders
# -fuzztime=60s`).
fuzz-smoke:
	@set -e; for f in FuzzFrameDecoders FuzzParseTasks FuzzDecodeTopology FuzzDecodeAllocation; do \
		$(GO) test ./internal/wirebin -run='^$$' -fuzz="^$$f$$" -fuzztime=300x >/dev/null || exit 1; \
	done; echo "fuzz-smoke: 4 targets clean"

# Tracing must stay off the hot leaves: internal/ds and internal/graph
# are the inner-loop data structures, and an internal/trace import
# there would put span plumbing inside loops that run millions of
# times per solve. Counter call sites belong at stage boundaries.
traceguard:
	@if grep -rn '"repro/internal/trace"' internal/ds internal/graph 2>/dev/null; then \
		echo "internal/trace must not be imported from internal/ds or internal/graph"; exit 1; \
	fi

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Docs gate: every example must build, vet must be clean, and every
# intra-repo markdown link in the entry-point docs must resolve
# (cmd/docscheck). Part of `make check`, so CI fails on a dead link or
# a bit-rotted example before a reader does.
docs:
	$(GO) build ./examples/...
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck README.md ROADMAP.md docs/ARCHITECTURE.md

# Bench smoke: one iteration of the engine benchmarks proves the
# service API's hot path still runs; full numbers via `go test -bench=.`.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEngine' -benchtime=1x .

# Bench tracking: run the engine benchmarks at a stable iteration
# count — with allocation stats, so the scratch-arena trajectory is
# tracked alongside ns/op — and record them as JSON diffable PR over
# PR (BENCH_PR<n>.json). The large parallel-solve and refinement
# instances run at a lower iteration count: one solve is ~10^8 ns.
BENCH_OUT ?= BENCH_PR10.json
BENCH_NOTES ?=
bench-json:
	@set -e; tmp=$$(mktemp); trap 'rm -f '$$tmp EXIT; \
	$(GO) test -run='^$$' -bench='BenchmarkEngine(Reuse|ColdStart|CacheHit|RunBatch|Portfolio)|BenchmarkSolveTraced' -benchmem -benchtime=50x -count=1 . > $$tmp; \
	$(GO) test -run='^$$' -bench='BenchmarkEngineParallelSolve|BenchmarkRefineMC|BenchmarkRemapVsCold|BenchmarkHeteroSolve|BenchmarkGeomSolve' -benchmem -benchtime=5x -count=1 . >> $$tmp; \
	$(GO) test -run='^$$' -bench='BenchmarkServeParallel' -benchmem -benchtime=200x -count=1 ./internal/service >> $$tmp; \
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) $(BENCH_NOTES) < $$tmp
	@echo "wrote $(BENCH_OUT)"

# Race gate: the engine's concurrent paths (batch pool, intra-request
# parallelism, portfolio racing, incremental remapping, the parallel
# congestion refinement and the Solve shim equivalence), the parallel/
# metrics/partition/arena/core/remap plumbing those are built on, plus
# the whole mapd service package (concurrent clients, portfolio and
# remap endpoints, cache churn, cancellation, multi-slot accounting).
race:
	$(GO) test -race -run='Engine|Batch|Portfolio|Solve|RefineMC|Remap|Geom' .
	$(GO) test -race ./internal/parallel/... ./internal/arena/... ./internal/partition/... ./internal/metrics/... ./internal/core/... ./internal/remap/... ./internal/trace/... ./internal/geom/... ./internal/sfc/...
	$(GO) test -race ./internal/service/...

# Coverage report: per-package statement coverage across the module
# plus the total. Non-blocking in CI — the number is a trend to watch,
# not a gate to game.
cover:
	@$(GO) test -coverprofile=coverage.out ./... | grep -v '\[no test files\]'
	@$(GO) tool cover -func=coverage.out | tail -1
	@echo "full per-function detail: go tool cover -func=coverage.out"

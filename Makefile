# The canonical tier-1 gate (see ROADMAP.md): `make check` is what CI
# and every PR must keep green. Individual stages are separate targets.

GO ?= go

.PHONY: check fmt vet build test bench bench-json race

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Bench smoke: one iteration of the engine benchmarks proves the
# service API's hot path still runs; full numbers via `go test -bench=.`.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEngine' -benchtime=1x .

# Bench tracking: run the engine benchmarks at a stable iteration
# count and record ns/op per benchmark as JSON, so the perf
# trajectory is diffable PR over PR (BENCH_PR<n>.json).
BENCH_OUT ?= BENCH_PR2.json
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkEngine' -benchtime=50x -count=1 . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Race gate: the engine's concurrent paths plus the whole mapd
# service package (concurrent clients, cache churn, cancellation).
race:
	$(GO) test -race -run='Engine|Batch' .
	$(GO) test -race ./internal/service/...
